"""Synchronous client for the sweep service (stdlib ``http.client``).

``freezetag submit`` and ``freezetag watch`` are thin wrappers over
:class:`ServiceClient`; tests and scripts can use it directly.  The
client is deliberately boring: blocking calls, JSON in/out, and a
generator over the SSE event stream for live progress — the CLI and the
service are two doors into the same harness, so the client's vocabulary
is exactly the endpoint payloads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Mapping
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying the transported error text."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"service error {status}: {message}")


class ServiceClient:
    """Blocking HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        if not split.hostname:
            raise ValueError(f"no host in server URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 8765
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _connect(self, timeout: float | None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )

    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, bytes]:
        connection = self._connect(self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: Any | None = None) -> Any:
        status, body = self._request(method, path, payload)
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError:
            raise ServiceError(
                status, f"non-JSON response: {body[:200]!r}"
            ) from None
        if status >= 400:
            message = (
                parsed.get("error", body.decode("utf-8", "replace"))
                if isinstance(parsed, dict)
                else str(parsed)
            )
            raise ServiceError(status, message)
        return parsed

    # -- API ----------------------------------------------------------------

    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """POST a sweep-spec payload; returns the status body (with
        ``id`` and ``created``)."""
        return self._json("POST", "/sweeps", dict(spec))

    def status(self, sweep_id: str) -> dict[str, Any]:
        return self._json("GET", f"/sweeps/{sweep_id}")

    def records(
        self, sweep_id: str, *, csv: bool = False, partial: bool = False
    ) -> dict[str, Any] | str:
        """Settled records — the JSON body, or CSV text with ``csv=True``."""
        suffix = "?format=csv" if csv else "?format=json"
        if partial:
            suffix += "&partial=1"
        if csv:
            status, body = self._request(
                "GET", f"/sweeps/{sweep_id}/records{suffix}"
            )
            if status >= 400:
                try:
                    message = json.loads(body).get("error", "")
                except json.JSONDecodeError:
                    message = body.decode("utf-8", "replace")
                raise ServiceError(status, message)
            return body.decode("utf-8")
        return self._json("GET", f"/sweeps/{sweep_id}/records{suffix}")

    def metrics(self) -> dict[str, Any]:
        return self._json("GET", "/metrics")

    def algorithms(self) -> list[dict[str, Any]]:
        return self._json("GET", "/algorithms")["algorithms"]

    def scenarios(self) -> list[dict[str, Any]]:
        return self._json("GET", "/scenarios")["scenarios"]

    def healthy(self) -> bool:
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except (OSError, ServiceError):
            return False

    # -- streaming ----------------------------------------------------------

    def _watch_once(
        self, sweep_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """One SSE connection: yield events until ``end`` or the stream
        drops (the server always closes *after* sending ``end``, so an
        EOF without one is a drop, not completion)."""
        connection = self._connect(timeout)
        try:
            connection.request("GET", f"/sweeps/{sweep_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                body = response.read()
                try:
                    message = json.loads(body).get("error", "")
                except json.JSONDecodeError:
                    message = body.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            data_lines: list[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    return  # stream dropped mid-flight (no end event)
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and data_lines:
                    event = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield event
                    if event.get("event") == "end":
                        return
        finally:
            connection.close()

    def watch(
        self,
        sweep_id: str,
        timeout: float | None = None,
        reconnect: int = 5,
        backoff: float = 0.5,
    ) -> Iterator[dict[str, Any]]:
        """Yield settle events from the SSE stream, history first, until
        the sweep's ``end`` event — surviving dropped connections.

        The event stream replays from the beginning on every connection,
        so resuming is exact: after a drop the client reconnects (with
        exponential backoff, up to ``reconnect`` consecutive attempts)
        and skips the prefix it already yielded.  Any successfully
        delivered event resets the attempt budget; a stream that dies
        ``reconnect + 1`` times in a row without progress raises
        :class:`ServiceError`.
        """
        seen = 0
        failures = 0
        while True:
            delivered = 0
            ended = False
            try:
                for position, event in enumerate(
                    self._watch_once(sweep_id, timeout)
                ):
                    if position < seen:
                        continue  # replayed history from before the drop
                    seen += 1
                    delivered += 1
                    failures = 0
                    ended = event.get("event") == "end"
                    yield event
                if ended:
                    return
                raise OSError("event stream closed before the end event")
            except (OSError, http.client.HTTPException) as exc:
                if delivered == 0:
                    failures += 1
                if failures > reconnect:
                    raise ServiceError(
                        0,
                        f"event stream for {sweep_id!r} dropped "
                        f"{failures} times without progress: {exc}",
                    ) from exc
                time.sleep(min(30.0, backoff * (2 ** max(0, failures - 1))))

    def wait(self, sweep_id: str) -> dict[str, Any]:
        """Block until the sweep finishes; returns its final status."""
        for event in self.watch(sweep_id):
            if event.get("event") == "end":
                break
        return self.status(sweep_id)
