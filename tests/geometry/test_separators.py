"""Separators: Lemma 3 (crossing paths hit the annulus) and structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    DiskGraph,
    Point,
    Rect,
    distance,
    separator_of,
    square_at_center,
)


class TestStructure:
    def test_annulus_membership(self):
        sep = separator_of(Rect(0, 0, 10, 10), ell=1.0)
        assert not sep.is_degenerate
        assert sep.contains(Point(0.5, 5))      # in the ring
        assert sep.contains(Point(5, 9.5))
        assert not sep.contains(Point(5, 5))    # strictly inside
        assert not sep.contains(Point(11, 5))   # outside the square

    def test_degenerate_when_narrow(self):
        sep = separator_of(Rect(0, 0, 2, 2), ell=1.0)
        assert sep.is_degenerate
        assert sep.contains(Point(1, 1))
        assert sep.rectangles() == [Rect(0, 0, 2, 2)]

    def test_rectangles_tile_annulus(self):
        region = Rect(0, 0, 10, 10)
        sep = separator_of(region, ell=1.0)
        rects = sep.rectangles()
        assert len(rects) == 4
        assert sum(r.area for r in rects) == pytest.approx(sep.area)
        # Strips stay inside the outer square.
        for r in rects:
            assert region.contains_rect(r)

    def test_area(self):
        sep = separator_of(Rect(0, 0, 10, 10), ell=1.0)
        assert sep.area == pytest.approx(100 - 64)

    def test_filter(self):
        sep = separator_of(Rect(0, 0, 10, 10), ell=1.0)
        pts = [Point(0.5, 0.5), Point(5, 5), Point(9.9, 5)]
        assert sep.filter(pts) == [Point(0.5, 0.5), Point(9.9, 5)]

    def test_invalid_ell(self):
        with pytest.raises(ValueError):
            separator_of(Rect(0, 0, 1, 1), ell=0.0)


class TestLemma3:
    """Any ell-disk-graph path inside->outside crosses the separator."""

    @given(st.integers(0, 1000))
    def test_random_crossing_paths(self, seed):
        import random

        rng = random.Random(seed)
        ell = 1.0
        region = square_at_center(Point(0, 0), 8.0)
        sep = separator_of(region, ell)
        # Random walk from deep inside to far outside with steps <= ell.
        path = [Point(0.0, 0.0)]
        while path[-1].norm() < 10.0:
            angle = rng.uniform(-0.6, 0.6)
            step = rng.uniform(0.3, 1.0) * ell
            import math

            direction = math.atan2(path[-1].y, path[-1].x or 1.0) + angle
            path.append(
                Point(
                    path[-1].x + step * math.cos(direction),
                    path[-1].y + step * math.sin(direction),
                )
            )
        # Consecutive hops are <= ell, start inside, end outside.
        assert all(
            distance(a, b) <= ell + 1e-9 for a, b in zip(path, path[1:])
        )
        assert any(sep.contains(p) for p in path), "path dodged the separator"

    def test_corollary2_empty_separator_means_separated(self):
        # Points clustered inside the inner square: an empty separator
        # correctly certifies there is no inside-outside edge.
        ell = 1.0
        region = square_at_center(Point(0, 0), 10.0)
        sep = separator_of(region, ell)
        inside = [Point(0.1 * i, 0.0) for i in range(5)]
        outside = [Point(20.0 + 0.1 * i, 0.0) for i in range(5)]
        pts = inside + outside
        assert not any(sep.contains(p) for p in pts)
        graph = DiskGraph(pts, ell)
        comp = graph.component_of(0)
        assert all(i < 5 for i in comp)
