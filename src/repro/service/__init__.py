"""Sweep-as-a-service: the async HTTP front of the sweep harness.

``freezetag serve`` exposes the batch harness — deterministic picklable
:class:`~repro.core.runner.RunRequest` jobs, the content-addressed
:class:`~repro.experiments.cache.ResultCache`, resumable
:class:`~repro.experiments.manifest.SweepManifest` ledgers and the
``async-local`` executor — as a multi-tenant experiment platform:

* ``POST /sweeps`` submits a :class:`~repro.experiments.SweepSpec` JSON
  body and returns the sweep id (the spec fingerprint);
* ``GET /sweeps/{id}`` reports manifest-backed status including per-job
  failures; ``GET /sweeps/{id}/records`` serves the settled records as
  JSON or CSV, byte-identical to ``run_sweep`` output;
* ``GET /sweeps/{id}/events`` streams per-job settle events (SSE);
* ``GET /metrics`` exposes process-wide telemetry: jobs settled,
  events/s, queue depth, cache hit rate, uptime.

Every tenant shares one cache and one single-writer job queue
(:mod:`~repro.service.scheduler`), so concurrent identical submissions
dedupe to one computation — a sweep requested twice is computed once.

The whole stack is standard library only (:mod:`asyncio` +
:mod:`~repro.service.httpd`); the ``[service]`` packaging extra is
reserved for optional accelerators and installs nothing today.
"""

from .app import SweepService
from .client import ServiceClient, ServiceError
from .scheduler import JobScheduler
from .telemetry import Telemetry

__all__ = [
    "SweepService",
    "ServiceClient",
    "ServiceError",
    "JobScheduler",
    "Telemetry",
]
