"""Seeded config generation: random sampling + corpus-biased mutation.

The generator is a pure function of its seed and of the corpus contents
at each ``generate`` call — no wall clock, no global randomness — so a
campaign with a fixed seed produces the identical config stream on every
backend and every rerun (the determinism the seed-replay tests pin).

Sampling deliberately over-weights the adversarial corners ROADMAP item 4
names: degenerate geometry (``n=1``, coincident robots, razor-thin
annuli, extreme aspect ratios), crash patterns (``crash_on_wake`` up to
certainty, varied ``failure_seed``), budget cliffs (world budgets placed
just above/below the swarm radius, ``enforce_budget`` toggles), speed
floors (slow cohorts down to 5% speed) and the ``awave`` differential
target (it gets the largest algorithm share, since every awave run drags
the ``legacy_awave`` oracle along).

A ``mode="hostile"`` generator additionally draws *out-of-contract*
configs — ``ell``/``rho`` inputs below the instance's true ``ell*`` /
``rho*`` — stamped ``mode="hostile"`` so the invariant checker waives
wake completeness but still demands energy conservation, reachability
and clean termination.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from .config import MODES, FuzzConfig
from .corpus import CorpusDatabase

__all__ = ["ConfigGenerator", "DEFAULT_MAX_N"]

DEFAULT_MAX_N = 48

#: (algorithm, weight).  ``awave`` dominates: it is the differential
#: target.  ``exact`` is sampled rarely and clamped to tiny ``n``.
_ALGORITHMS: tuple[tuple[str, int], ...] = (
    ("awave", 30),
    ("agrid", 14),
    ("aseparator", 14),
    ("legacy_awave", 6),
    ("greedy", 8),
    ("quadtree", 7),
    ("chain", 7),
    ("online_greedy", 7),
    ("exact", 7),
)

_RHO_CHOICES = (0.5, 1.0, 2.0, 4.0, 8.0, 20.0)
_CRASH_CHOICES = (0.1, 0.5, 1.0)
_SLOW_SPEED_CHOICES = (0.05, 0.25, 0.5, 0.9)


def _admissible(config: FuzzConfig) -> bool:
    """Registry-level capacity guard (e.g. ``exact``'s ``max_n``).

    ``FuzzConfig`` construction validates schemas; ``max_n`` is only
    enforced at execution time, so a mutation doubling ``n`` past an
    algorithm's capacity must be rejected here, not settled as a
    spurious unexpected-exception.
    """
    from ..core.registry import get_algorithm

    spec = get_algorithm(config.algorithm)
    if spec.max_n is None:
        return True
    n = config.n_hint
    return n is None or n <= spec.max_n


class ConfigGenerator:
    """Draws :class:`FuzzConfig` batches from seeded randomness.

    ``corpus`` (optional) feeds mutation: with some probability a new
    config is a single-knob mutation of a random corpus representative
    instead of a fresh sample, steering generation toward the neighborhood
    of behavior classes already proven reachable.
    """

    def __init__(
        self,
        seed: int = 0,
        corpus: CorpusDatabase | None = None,
        max_n: int = DEFAULT_MAX_N,
        mutation_rate: float = 0.4,
        mode: str = "contract",
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self._rng = random.Random(seed)
        self._corpus = corpus
        self._max_n = max(1, int(max_n))
        self._mutation_rate = mutation_rate
        self.mode = mode
        self._seen: set[str] = set()
        samplers: list[Callable[[], FuzzConfig]] = [
            self._sample_classic,
            self._sample_degenerate,
            self._sample_world_stress,
            self._sample_budget_cliff,
        ]
        if mode == "hostile":
            # Over-weight the whole point of a hostile campaign while
            # keeping the contract samplers in the pool — mixed streams
            # catch regressions where an out-of-contract run poisons the
            # engine state a later in-contract run depends on.
            samplers += [self._sample_hostile, self._sample_hostile]
        self._samplers = tuple(samplers)

    # -- public surface ------------------------------------------------------

    def generate(self, count: int) -> list[FuzzConfig]:
        """The next ``count`` configs (exact-duplicate configs skipped)."""
        batch: list[FuzzConfig] = []
        attempts = 0
        while len(batch) < count and attempts < count * 30:
            attempts += 1
            config = self._draw()
            if config is None:
                continue
            cid = config.config_id()
            if cid in self._seen:
                continue
            self._seen.add(cid)
            batch.append(config)
        return batch

    # -- draw dispatch -------------------------------------------------------

    def _draw(self) -> FuzzConfig | None:
        rng = self._rng
        try:
            if (
                self._corpus is not None
                and len(self._corpus)
                and rng.random() < self._mutation_rate
            ):
                config = self._mutate()
            else:
                sampler = rng.choice(self._samplers)
                config = sampler()
        except (ValueError, KeyError):
            # An inadmissible draw (schema rejection, over-capacity n,
            # bad world override) is simply discarded and redrawn.
            return None
        return config if config is not None and _admissible(config) else None

    def _size(self, cap: int | None = None) -> int:
        """Swarm sizes biased small (shrinking likes it), tail to max_n."""
        rng = self._rng
        limit = min(self._max_n, cap) if cap else self._max_n
        roll = rng.random()
        if roll < 0.15:
            return rng.choice((1, 2, 3))
        if roll < 0.7:
            return rng.randint(1, min(12, limit))
        return rng.randint(1, limit)

    def _algorithm(self) -> str:
        names = [name for name, _ in _ALGORITHMS]
        weights = [weight for _, weight in _ALGORITHMS]
        return self._rng.choices(names, weights=weights, k=1)[0]

    def _algorithm_params(self, algorithm: str) -> dict[str, Any]:
        rng = self._rng
        params: dict[str, Any] = {}
        if algorithm in ("awave", "agrid", "legacy_awave") and rng.random() < 0.25:
            params["enforce_budget"] = True
        if algorithm == "aseparator" and rng.random() < 0.5:
            params["solver"] = rng.choice(("quadtree", "greedy", "chain"))
        return params

    # -- samplers ------------------------------------------------------------

    def _sample_classic(self) -> FuzzConfig:
        rng = self._rng
        algorithm = self._algorithm()
        cap = 7 if algorithm == "exact" else None
        scenario = rng.choice(
            (
                "uniform_disk",
                "uniform_square",
                "clusters",
                "annulus",
                "beaded_path",
                "spiral",
                "grid_lattice",
                "l1_diamond",
                "connected_walk",
                "two_clusters_bridge",
            )
        )
        n = self._size(cap)
        seed = rng.randint(0, 10_000)
        rho = rng.choice(_RHO_CHOICES)
        kwargs: dict[str, Any]
        if scenario == "uniform_disk":
            kwargs = {"n": n, "rho": rho, "seed": seed}
        elif scenario == "uniform_square":
            kwargs = {"n": n, "half_width": rho, "seed": seed}
        elif scenario == "clusters":
            kwargs = {
                "n": n,
                "n_clusters": rng.randint(1, max(1, min(4, n))),
                "rho": max(rho, 2.0),
                "spread": rng.choice((0.2, 1.0)),
                "seed": seed,
            }
        elif scenario == "annulus":
            r_outer = max(rho, 1.0)
            r_inner = r_outer * rng.choice((0.1, 0.5, 0.95))
            kwargs = {"n": n, "r_inner": r_inner, "r_outer": r_outer, "seed": seed}
        elif scenario == "beaded_path":
            kwargs = {
                "n": n,
                "spacing": rng.choice((0.25, 1.0, 2.5)),
                "seed": seed,
                "wiggle": rng.choice((0.0, 0.3)),
            }
        elif scenario == "spiral":
            kwargs = {"n": n, "spacing": rng.choice((0.5, 1.0, 2.0))}
        elif scenario == "grid_lattice":
            side = rng.randint(1, 2) if cap else rng.randint(1, 6)
            kwargs = {"side": side, "spacing": rng.choice((0.5, 1.0, 2.0))}
        elif scenario == "l1_diamond":
            pitch = rng.choice((0.5, 1.0))
            radius = max(rho, 2.0)
            k = int(radius / pitch)
            capacity = 2 * k * (k + 1)
            kwargs = {
                "n": min(n, capacity),
                "rho": radius,
                "pitch": pitch,
                "seed": seed,
            }
        elif scenario == "connected_walk":
            kwargs = {
                "n": n,
                "step": rng.choice((0.5, 1.0, 2.0)),
                "seed": seed,
                "jitter": rng.choice((0.0, 0.3)),
            }
        else:  # two_clusters_bridge
            kwargs = {
                "n": max(n, 2),
                "gap": rng.choice((2.0, 8.0, 20.0)),
                "spacing": rng.choice((0.5, 1.0)),
                "seed": seed,
            }
        return FuzzConfig(
            algorithm=algorithm,
            scenario=scenario,
            scenario_kwargs=kwargs,
            params=self._algorithm_params(algorithm),
        )

    def _sample_degenerate(self) -> FuzzConfig:
        """Geometry torture: coincident robots, the Thm 2 grid, n=1."""
        rng = self._rng
        algorithm = self._algorithm()
        cap = 7 if algorithm == "exact" else None
        seed = rng.randint(0, 10_000)
        if rng.random() < 0.5:
            scenario = "coincident_pairs"
            kwargs: dict[str, Any] = {
                "n": self._size(cap),
                "rho": rng.choice((0.5, 2.0, 8.0)),
                "seed": seed,
            }
        else:
            scenario = "grid_of_disks"
            ell = rng.choice((1.0, 2.0, 3.0))
            kwargs = {
                "ell": ell,
                "rho": ell * rng.choice((1.0, 1.5, 3.0)),
                "n": self._size(cap),
                "seed": seed,
            }
        return FuzzConfig(
            algorithm=algorithm,
            scenario=scenario,
            scenario_kwargs=kwargs,
            params=self._algorithm_params(algorithm),
        )

    def _sample_world_stress(self) -> FuzzConfig:
        """Crash patterns, speed floors, turbo swarms."""
        rng = self._rng
        algorithm = self._algorithm()
        cap = 7 if algorithm == "exact" else None
        n = self._size(cap)
        seed = rng.randint(0, 10_000)
        scenario = rng.choice(
            ("fragile_swarm", "slow_swarm", "slow_annulus", "turbo_swarm")
        )
        if scenario == "slow_annulus":
            kwargs: dict[str, Any] = {
                "n": n,
                "r_inner": 1.0,
                "r_outer": rng.choice((2.0, 6.0)),
                "seed": seed,
            }
        else:
            kwargs = {"n": n, "rho": rng.choice((1.0, 4.0, 10.0)), "seed": seed}
        world: dict[str, Any] = {}
        if scenario == "fragile_swarm" and rng.random() < 0.7:
            world["crash_on_wake"] = rng.choice(_CRASH_CHOICES)
            world["failure_seed"] = rng.randint(0, 1_000)
        if scenario in ("slow_swarm", "slow_annulus") and rng.random() < 0.7:
            world["slow_speed"] = rng.choice(_SLOW_SPEED_CHOICES)
            world["slow_fraction"] = rng.choice((0.1, 0.5, 1.0))
        return FuzzConfig(
            algorithm=algorithm,
            scenario=scenario,
            scenario_kwargs=kwargs,
            world_params=world,
            params=self._algorithm_params(algorithm),
        )

    def _sample_budget_cliff(self) -> FuzzConfig:
        """World budgets pinned near the scale where runs just succeed.

        A budget in the neighborhood of the swarm radius guarantees the
        campaign exercises both sides of the abort: comfortably below it
        (instant justified exception) and above it (full run under a
        finite ceiling).  Either way the exception-justification logic is
        on trial.
        """
        rng = self._rng
        algorithm = self._algorithm()
        cap = 7 if algorithm == "exact" else None
        n = self._size(cap)
        rho = rng.choice((1.0, 4.0, 10.0))
        seed = rng.randint(0, 10_000)
        scale = rng.choice((0.5, 1.1, 4.0, 64.0))
        world: dict[str, Any] = {"budget": max(rho * scale, 0.25)}
        if rng.random() < 0.3:
            world["source_budget"] = max(rho * rng.choice((0.9, 8.0)), 0.25)
        params = self._algorithm_params(algorithm)
        return FuzzConfig(
            algorithm=algorithm,
            scenario="fragile_swarm" if rng.random() < 0.2 else "uniform_disk",
            scenario_kwargs={"n": n, "rho": rho, "seed": seed},
            world_params=world,
            params=params,
        )

    def _sample_hostile(self) -> FuzzConfig:
        """Out-of-contract inputs: ``ell`` below ``ell*``, ``rho`` below
        ``rho*``.

        The admissibility contract (``ell >= ell_star``, ``rho >=
        rho_star``) is what lets the distributed algorithms promise a
        complete wake; a hostile draw hands them a lie — a spread-out
        swarm with ``ell`` pinned to 1 or 2, or an ``aseparator`` radius
        a fraction of the true one.  Incomplete wakes are legitimate then
        (mode ``hostile`` waives that invariant), but energy
        conservation, reachability and clean termination still hold: the
        engine must not care how bad its inputs were.
        """
        rng = self._rng
        algorithm = rng.choice(("awave", "agrid", "aseparator"))
        seed = rng.randint(0, 10_000)
        # A spread-out instance, so the true ell*/rho* sit well above the
        # lie we are about to tell.
        rho = rng.choice((4.0, 8.0, 20.0))
        n = max(4, self._size())
        params: dict[str, Any] = {"ell": rng.choice((1, 2))}
        if algorithm == "aseparator":
            if rng.random() < 0.7:
                params["rho"] = rho * rng.choice((0.01, 0.1, 0.5))
            if rng.random() < 0.5:
                params["solver"] = rng.choice(("quadtree", "greedy", "chain"))
        elif rng.random() < 0.25:
            params["enforce_budget"] = True
        return FuzzConfig(
            algorithm=algorithm,
            scenario="uniform_disk",
            scenario_kwargs={"n": n, "rho": rho, "seed": seed},
            params=params,
            mode="hostile",
        )

    # -- mutation ------------------------------------------------------------

    def _mutate(self) -> FuzzConfig | None:
        rng = self._rng
        assert self._corpus is not None
        parents = self._corpus.representatives()
        parent = FuzzConfig.from_dict(rng.choice(parents))
        kwargs = dict(parent.scenario_kwargs)
        world = dict(parent.world_params)
        params = dict(parent.params)
        moves = []
        if "n" in kwargs:
            moves += ["halve_n", "double_n"]
        if "seed" in kwargs:
            moves.append("reseed")
        if world:
            moves.append("drop_world_knob")
        if params:
            moves.append("drop_param")
        moves += ["swap_algorithm", "toggle_budget"]
        move = rng.choice(moves)
        if move == "halve_n":
            kwargs["n"] = max(1, int(kwargs["n"]) // 2)
        elif move == "double_n":
            kwargs["n"] = min(self._max_n, max(1, int(kwargs["n"]) * 2))
        elif move == "reseed":
            kwargs["seed"] = rng.randint(0, 10_000)
        elif move == "drop_world_knob":
            world.pop(rng.choice(sorted(world)))
        elif move == "drop_param":
            params.pop(rng.choice(sorted(params)))
        elif move == "toggle_budget":
            algorithm = parent.algorithm
            if params.get("enforce_budget"):
                params.pop("enforce_budget")
            elif algorithm in ("awave", "agrid", "legacy_awave"):
                params["enforce_budget"] = True
        elif move == "swap_algorithm":
            algorithm = self._algorithm()
            if algorithm == "exact" and int(kwargs.get("n", 99)) > 7:
                return None
            return FuzzConfig(
                algorithm=algorithm,
                scenario=parent.scenario,
                scenario_kwargs=kwargs,
                world_params=world,
                params=self._algorithm_params(algorithm),
                mode=parent.mode,
            )
        return FuzzConfig(
            algorithm=parent.algorithm,
            scenario=parent.scenario,
            scenario_kwargs=kwargs,
            world_params=world,
            params=params,
            mode=parent.mode,
        )
