"""Process choreography: fork, barrier, absorb, deadlock detection."""

import pytest

from repro.geometry import Point
from repro.sim import (
    Absorb,
    AbsorbError,
    Barrier,
    BarrierError,
    Engine,
    Fork,
    ForkError,
    Move,
    SOURCE_ID,
    SimulationDeadlock,
    Wait,
    Wake,
    World,
)


def make_team_world(k):
    """World with k awake co-located robots at the origin."""
    world = World(source=Point(0, 0), positions=[Point(0, 0)] * (k - 1))
    for rid in range(1, k):
        world.mark_awake(rid, 0.0, waker_id=SOURCE_ID)
    return world


class TestFork:
    def test_fork_splits_ownership(self):
        world = make_team_world(3)
        engine = Engine(world)
        seen = {}

        def child(name):
            def program(proc):
                seen[name] = tuple(proc.robot_ids)
                yield Move(Point(1, 0))

            return program

        def parent(proc):
            yield Fork([((1,), child("a")), ((2,), child("b"))])
            assert proc.robot_ids == (SOURCE_ID,)

        engine.spawn(parent, [0, 1, 2])
        engine.run()
        assert seen == {"a": (1,), "b": (2,)}

    def test_fork_cannot_give_everything_away(self):
        world = make_team_world(2)
        engine = Engine(world)

        def parent(proc):
            yield Fork([((0, 1), lambda p: iter(()))])

        engine.spawn(parent, [0, 1])
        with pytest.raises(ForkError):
            engine.run()

    def test_fork_unowned_robot_rejected(self):
        world = make_team_world(2)
        engine = Engine(world)

        def parent(proc):
            yield Fork([((7,), lambda p: iter(()))])

        engine.spawn(parent, [0, 1])
        with pytest.raises(ForkError):
            engine.run()

    def test_fork_duplicate_assignment_rejected(self):
        world = make_team_world(3)
        engine = Engine(world)

        def parent(proc):
            yield Fork([((1,), lambda p: iter(())), ((1,), lambda p: iter(()))])

        engine.spawn(parent, [0, 1, 2])
        with pytest.raises(ForkError):
            engine.run()


class TestBarrier:
    def test_barrier_synchronizes_and_shares(self):
        world = make_team_world(2)
        engine = Engine(world)
        results = {}

        def slow(proc):
            yield Move(Point(3, 0))     # arrives at t=3
            yield Move(Point(0, 0))     # back at t=6
            payloads = (yield Barrier("rv", 2, payload="slow")).value
            results["slow"] = (proc.time, payloads)

        def parent(proc):
            yield Fork([((1,), slow)])
            payloads = (yield Barrier("rv", 2, payload="fast")).value
            results["fast"] = (proc.time, payloads)

        engine.spawn(parent, [0, 1])
        engine.run()
        # Both resume at the last arrival time with all payloads.
        assert results["fast"][0] == pytest.approx(6.0)
        assert results["slow"][0] == pytest.approx(6.0)
        assert sorted(results["fast"][1]) == ["fast", "slow"]

    def test_barrier_party_mismatch(self):
        world = make_team_world(2)
        engine = Engine(world)

        def a(proc):
            yield Barrier("k", 2, payload=None)

        def parent(proc):
            yield Fork([((1,), a)])
            yield Barrier("k", 3, payload=None)

        engine.spawn(parent, [0, 1])
        with pytest.raises(BarrierError):
            engine.run()

    def test_barrier_requires_colocation(self):
        world = make_team_world(2)
        engine = Engine(world)

        def away(proc):
            yield Move(Point(5, 0))
            yield Barrier("k", 2, payload=None)

        def parent(proc):
            yield Fork([((1,), away)])
            yield Barrier("k", 2, payload=None)

        engine.spawn(parent, [0, 1])
        with pytest.raises(BarrierError):
            engine.run()

    def test_unreleased_barrier_deadlocks(self):
        world = make_team_world(1)
        engine = Engine(world)

        def lonely(proc):
            yield Barrier("nobody-else", 2, payload=None)

        engine.spawn(lonely, [0])
        with pytest.raises(SimulationDeadlock):
            engine.run()


class TestAbsorb:
    def test_absorb_after_child_finishes(self):
        world = make_team_world(2)
        engine = Engine(world)

        def child(proc):
            yield Barrier("m", 2, payload=None)
            # returns -> robot 1 idles at the origin

        def parent(proc):
            yield Fork([((1,), child)])
            yield Barrier("m", 2, payload=None)
            yield Wait(0.0)  # let the child's process finish
            yield Absorb([1])
            assert set(proc.robot_ids) == {0, 1}
            yield Move(Point(2, 0))

        engine.spawn(parent, [0, 1])
        engine.run()
        assert world.robots[1].position == Point(2, 0)

    def test_absorb_busy_robot_rejected(self):
        world = make_team_world(2)
        engine = Engine(world)

        def child(proc):
            yield Wait(100.0)

        def parent(proc):
            yield Fork([((1,), child)])
            yield Absorb([1])

        engine.spawn(parent, [0, 1])
        with pytest.raises(AbsorbError):
            engine.run()

    def test_absorb_requires_colocation(self):
        world = make_team_world(2)
        engine = Engine(world)

        def child(proc):
            yield Move(Point(5, 0))

        def parent(proc):
            yield Fork([((1,), child)])
            yield Wait(10.0)
            yield Absorb([1])

        engine.spawn(parent, [0, 1])
        with pytest.raises(AbsorbError):
            engine.run()


class TestTeamMotion:
    def test_team_moves_together(self):
        world = make_team_world(3)
        engine = Engine(world)

        def program(proc):
            yield Move(Point(3, 4))

        engine.spawn(program, [0, 1, 2])
        engine.run()
        for rid in range(3):
            assert world.robots[rid].position == Point(3, 4)
            assert world.robots[rid].odometer == pytest.approx(5.0)

    def test_wake_join_then_fork_out(self):
        world = World(source=Point(0, 0), positions=[Point(1, 0)])
        engine = Engine(world)
        forked = []

        def solo(proc):
            forked.append(proc.robot_ids)
            yield Move(Point(9, 0))

        def program(proc):
            yield Move(Point(1, 0))
            yield Wake(1)
            yield Fork([((1,), solo)])
            yield Move(Point(0, 0))

        engine.spawn(program, [0])
        engine.run()
        assert forked == [(1,)]
        assert world.robots[1].position == Point(9, 0)
        assert world.robots[0].position == Point(0, 0)
