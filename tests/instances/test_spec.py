"""Instance container: parameters, inputs, world creation."""

import math

import pytest

from repro.geometry import Point
from repro.instances import Instance, uniform_disk


class TestConstruction:
    def test_build_normalizes(self):
        inst = Instance.build([(1, 2), (3.5, -1)], source=(0, 0), name="x")
        assert inst.positions == (Point(1.0, 2.0), Point(3.5, -1.0))
        assert inst.source == Point(0.0, 0.0)
        assert inst.n == 2

    def test_immutable(self):
        inst = Instance.build([(1, 1)])
        with pytest.raises(AttributeError):
            inst.positions = ()

    def test_repr_carries_name(self):
        inst = Instance.build([(1, 1)], name="mytest")
        assert "mytest" in repr(inst)


class TestParameters:
    def test_known_values_on_a_chain(self):
        inst = Instance.build([(1, 0), (2, 0), (3, 0)])
        assert inst.rho_star == pytest.approx(3.0)
        assert inst.ell_star == pytest.approx(1.0)
        assert inst.xi(1.0) == pytest.approx(3.0)

    def test_xi_infinite_when_disconnected(self):
        inst = Instance.build([(10, 0)])
        assert math.isinf(inst.xi(1.0))
        assert not inst.is_connected_for(1.0)
        assert inst.is_connected_for(10.0)

    def test_default_inputs_admissible(self):
        inst = uniform_disk(n=30, rho=8.0, seed=0)
        ell, rho = inst.default_inputs()
        assert ell >= inst.ell_star
        assert rho >= inst.rho_star
        assert ell <= rho

    def test_default_inputs_slack(self):
        inst = uniform_disk(n=30, rho=8.0, seed=0)
        ell1, rho1 = inst.default_inputs()
        ell2, rho2 = inst.default_inputs(slack=2.0)
        assert ell2 >= ell1 and rho2 >= rho1


class TestWorld:
    def test_world_fresh_every_call(self):
        inst = Instance.build([(1, 0)])
        w1, w2 = inst.world(), inst.world()
        w1.mark_awake(1, 1.0, waker_id=0)
        assert w2.sleeping_count() == 1

    def test_world_budget_propagates(self):
        inst = Instance.build([(1, 0)])
        world = inst.world(budget=5.0)
        assert world.robots[1].budget == 5.0
        assert world.source.budget == 5.0

    def test_translated(self):
        inst = Instance.build([(1, 0)], source=(0, 0))
        moved = inst.translated(10, -2)
        assert moved.source == Point(10, -2)
        assert moved.positions[0] == Point(11, -2)
        # Parameters are translation-invariant.
        assert moved.rho_star == pytest.approx(inst.rho_star)
