"""Row printing and CSV export for experiment series."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "print_table", "write_csv"]


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Fixed-width text table from homogeneous dict rows."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    rendered = [
        {h: _fmt(row.get(h)) for h in headers} for row in rows
    ]
    widths = {
        h: max(len(h), *(len(r[h]) for r in rendered)) for h in headers
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for r in rendered:
        lines.append("  ".join(r[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> None:
    """Print dict rows as a fixed-width text table."""
    print(format_table(rows, title))


def write_csv(path: str | Path, rows: Sequence[Mapping[str, Any]]) -> Path:
    """Write dict rows to ``path`` (parent directories created).

    Headers are the union of all row keys in first-appearance order —
    mixed sweeps (family rows first, scenario rows with extra columns
    later) must not silently drop the late columns.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        target.write_text("")
        return target
    headers = list(dict.fromkeys(key for row in rows for key in row))
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow({h: row.get(h) for h in headers})
    return target


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
