"""Two-pass adversary realizing the lower-bound placements (DESIGN.md #3).

The proofs of Theorems 2 and 3 place each hidden robot at "the last
position of its disk to be explored" by the algorithm under attack.
Against a concrete implementation we realize this in two passes:

1. **Probe pass** — run the algorithm on a *decoy* instance (robots at the
   disk centers) while recording every snapshot position.  For each disk,
   lay a fine lattice of candidate points and compute when each candidate
   was first covered (within visibility radius 1 of some snapshot).
2. **Pin** — place each robot at its disk's latest-covered candidate (or
   at any never-covered candidate, which is a certified algorithm failure
   for the energy experiment), and re-run on the pinned instance.

This is not a fully-online adversary (the algorithm may behave differently
once placements change earlier discoveries), but it produces exactly the
hard instances the Ω-bounds describe for discovery-dominated algorithms,
and the FIG5 bench shows the measured makespans tracking
``ell^2 * log m``.

Coverage bookkeeping piggybacks on the trace: ``Look`` events store the
observer position when ``keep_looks`` is enabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

from ..geometry import Point, distance
from ..sim import SOURCE_ID, Engine, Trace
from ..sim.actions import Program
from .lower_bounds import GridOfDisks
from .spec import Instance

__all__ = [
    "CoverageMap",
    "record_look_positions",
    "disk_candidates",
    "latest_covered_point",
    "adversarial_grid_instance",
    "coverage_fraction",
]


@dataclass
class CoverageMap:
    """Snapshot positions with timestamps from one probe run."""

    looks: List[tuple[float, Point]]

    def first_cover_time(self, p: Point, radius: float = 1.0) -> float:
        """Time the point ``p`` was first within ``radius`` of a snapshot
        (``inf`` if never covered)."""
        for t, center in self.looks:
            if distance(center, p) <= radius + 1e-9:
                return t
        return math.inf


def record_look_positions(
    instance: Instance,
    program: Program,
    budget: float = math.inf,
) -> tuple[CoverageMap, float]:
    """Probe pass: run ``program`` on ``instance`` recording snapshots.

    Returns the coverage map and the run's makespan.  Energy overruns are
    tolerated here (the probe only measures what *could* be seen).
    """
    world = instance.world(budget=budget)
    trace = Trace(keep_looks=True)
    engine = Engine(world, trace=trace)
    engine.spawn(program, robot_ids=[SOURCE_ID])
    try:
        result = engine.run()
        makespan = result.makespan
    except Exception:
        makespan = world.last_wake_time
    looks = [
        (e.time, e.data["at"])
        for e in trace.events
        if e.kind == "look" and "at" in e.data
    ]
    return CoverageMap(looks=looks), makespan


def disk_candidates(center: Point, radius: float, resolution: int = 5) -> list[Point]:
    """A lattice of candidate hiding spots inside ``B(center, radius)``."""
    pts: list[Point] = [center]
    for i in range(-resolution, resolution + 1):
        for j in range(-resolution, resolution + 1):
            p = Point(
                center[0] + i * radius / resolution,
                center[1] + j * radius / resolution,
            )
            if distance(p, center) <= radius + 1e-12 and (i, j) != (0, 0):
                pts.append(p)
    return pts


def latest_covered_point(
    coverage: CoverageMap,
    center: Point,
    radius: float,
    resolution: int = 5,
) -> Point:
    """The candidate of ``B(center, radius)`` covered last (never-covered
    candidates win outright)."""
    best_point = center
    best_time = -1.0
    for p in disk_candidates(center, radius, resolution):
        t = coverage.first_cover_time(p)
        if math.isinf(t):
            return p
        if t > best_time:
            best_time = t
            best_point = p
    return best_point


def adversarial_grid_instance(
    construction: GridOfDisks,
    program_factory: Callable[[Instance], Program],
    resolution: int = 4,
) -> Instance:
    """Run the two-pass adversary against the Thm 2 grid of disks.

    ``program_factory`` builds the algorithm's source program for a given
    instance (the probe and the pinned run may need different ``(ell,rho)``
    inputs, though the decoy and pinned instances share parameters by
    construction).
    """
    decoy = construction.instance()
    coverage, _ = record_look_positions(decoy, program_factory(decoy))
    placements = [
        latest_covered_point(coverage, c, construction.disk_radius, resolution)
        for c in construction.centers
    ]
    return construction.instance(placements)


def coverage_fraction(
    coverage: CoverageMap,
    center: Point,
    radius: float,
    resolution: int = 12,
) -> float:
    """Fraction of ``B(center, radius)`` candidates ever covered — the
    Thm 3 energy experiment's success measure."""
    candidates = disk_candidates(center, radius, resolution)
    covered = sum(
        1 for p in candidates if math.isfinite(coverage.first_cover_time(p))
    )
    return covered / len(candidates)
