"""Uniform run summaries for tables and CSV export.

Instance parameters (``rho_star``, ``ell_star``, ``xi_ell``) are memoized
per workload: a sweep produces many records of the same (family, kwargs)
point — one per algorithm and parameter combination — but each record's
run re-creates its :class:`~repro.instances.Instance` from scratch, so
the per-object ``cached_property`` never helps across records and the
disk-graph connectivity threshold (the most expensive preprocessing at
scale) used to be rebuilt *per record*.  The memo below is keyed by the
generated geometry itself (source + positions tuple — a deterministic
generator makes this exactly one entry per (family, kwargs) point), so
summary collection does one disk-graph build per sweep family and stays
scale-free at large ``n``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any

from ..core.runner import AlgorithmRun
from ..geometry import Point
from ..instances import Instance
from .curves import wake_curve

__all__ = ["RunSummary", "summarize", "instance_summary_parameters"]

#: Workload-geometry -> {"rho_star", "ell_star", "xi": {ell: xi_ell}}.
#: Bounded: a sweep touches a handful of workloads, but a long-lived
#: process (notebook, service) must not accumulate position tuples forever.
_PARAM_MEMO: dict[tuple[Point, tuple[Point, ...]], dict[str, Any]] = {}
_PARAM_MEMO_MAX = 16


def instance_summary_parameters(
    inst: Instance, ell: float
) -> tuple[float, float, float]:
    """``(rho_star, ell_star, xi_ell)`` with the per-workload memo.

    Keyed by the instance's exact geometry (collision-proof: the tuple
    *is* the workload), so repeated records of one sweep point — fresh
    ``Instance`` objects with identical positions — pay for the disk
    graph once.
    """
    key = (inst.source, inst.positions)
    entry = _PARAM_MEMO.get(key)
    if entry is None:
        if len(_PARAM_MEMO) >= _PARAM_MEMO_MAX:
            _PARAM_MEMO.pop(next(iter(_PARAM_MEMO)))
        entry = _PARAM_MEMO[key] = {
            "rho_star": inst.rho_star,
            "ell_star": inst.ell_star,
            "xi": {},
        }
    xi = entry["xi"].get(ell)
    if xi is None:
        xi = entry["xi"][ell] = inst.xi(ell)
    return entry["rho_star"], entry["ell_star"], xi


@dataclass(frozen=True)
class RunSummary:
    """Flat record of one run — ready for CSV rows and printed tables."""

    algorithm: str
    instance: str
    n: int
    ell: int
    rho: float
    rho_star: float
    ell_star: float
    xi_ell: float
    makespan: float
    half_wake_time: float     # time to wake 50% of the swarm
    termination_time: float
    max_energy: float
    total_energy: float
    snapshots: int
    woke_all: bool

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @property
    def makespan_per_rho(self) -> float:
        return self.makespan / self.rho_star if self.rho_star > 0 else math.inf

    @property
    def makespan_per_xi(self) -> float:
        return self.makespan / self.xi_ell if self.xi_ell > 0 else math.inf


def summarize(run: AlgorithmRun) -> RunSummary:
    """Flatten an :class:`AlgorithmRun` into a :class:`RunSummary` record."""
    inst = run.instance
    curve = wake_curve(run.result)
    rho_star, ell_star, xi_ell = instance_summary_parameters(inst, run.ell)
    return RunSummary(
        algorithm=run.algorithm,
        instance=inst.name,
        n=inst.n,
        ell=run.ell,
        rho=run.rho,
        rho_star=rho_star,
        ell_star=ell_star,
        xi_ell=xi_ell,
        makespan=run.result.makespan,
        half_wake_time=curve.quantile(0.5),
        termination_time=run.result.termination_time,
        max_energy=run.result.max_energy,
        total_energy=run.result.total_energy,
        snapshots=run.result.snapshots,
        woke_all=run.result.woke_all,
    )
