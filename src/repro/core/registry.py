"""Algorithm registry: one pluggable run API for every wake-up strategy.

The paper's headline comparison pits the *distributed* algorithms
(``ASeparator``/``AGrid``/``AWave``) against *centralized* clairvoyant
schedules.  To make that comparison a one-line sweep spec — and to give
future backends a single extension point — every runnable algorithm is a
registered :class:`AlgorithmSpec`:

* a canonical ``name`` (the key used by :class:`~repro.core.runner.RunRequest`,
  sweep specs, the CLI and the cache),
* a typed parameter schema (:class:`ParamSpec`) with defaults, validated
  before any simulation starts,
* a ``build`` factory producing a :class:`RunSetup` — the program the
  engine executes plus the resolved ``(ell, rho, budget)`` inputs,
* capability flags (``kind``, ``needs_rho``, ``supports_budget``,
  ``max_n``) and an optional ``energy_budget`` function so tools can
  reason about an algorithm without special-casing its name.

Built-in algorithms register themselves in :mod:`repro.core.catalog`
(imported lazily on first lookup); external code adds new ones with the
:func:`register_algorithm` decorator::

    @register_algorithm(
        name="mywave", label="MyWave", kind="distributed",
        params=(ParamSpec("ell", int),),
    )
    def _build_mywave(instance, params):
        ell = params.get("ell", instance.default_inputs()[0])
        return RunSetup(program=mywave_program(ell=ell), label="MyWave",
                        ell=ell, rho=float(instance.default_inputs()[1]))

After registration the algorithm is immediately sweepable, cacheable and
listed by ``freezetag algorithms`` — no engine, harness or CLI changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, TYPE_CHECKING

from ..params import ParamSpec, lookup_param, validate_param_mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..instances import Instance
    from ..sim import Trace, WorldConfig
    from ..sim.actions import Program
    from .runner import AlgorithmRun

__all__ = [
    "ParamSpec",
    "RunSetup",
    "AlgorithmSpec",
    "register_algorithm",
    "unregister_algorithm",
    "get_algorithm",
    "algorithm_names",
    "iter_algorithms",
]

#: Algorithm kinds: distributed programs discover the swarm through the
#: Look-Compute-Move model; centralized baselines are clairvoyant — they
#: read the instance positions up front and only *execute* through the
#: engine (so makespan/energy are measured identically).
KINDS = ("distributed", "centralized")


@dataclass(frozen=True)
class RunSetup:
    """What a spec's ``build`` factory hands the engine: the source
    program plus the resolved run inputs recorded on the result."""

    program: "Program"
    label: str                 # human label, e.g. "ASeparator[greedy]"
    ell: int
    rho: float
    budget: float = math.inf   # per-robot energy budget (inf = unconstrained)


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered algorithm: schema, factory, and capability flags."""

    name: str
    label: str
    kind: str                  # "distributed" | "centralized"
    build: Callable[..., RunSetup]
    params: tuple[ParamSpec, ...] = ()
    energy_budget: Callable[[int], float] | None = None
    needs_rho: bool = False    # takes the paper's rho input (ASeparator)
    supports_budget: bool = False  # can enforce its Theorem energy budget
    max_n: int | None = None   # hard instance-size limit (exact solver)
    world_aware: bool = False  # build takes (instance, params, world)
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown algorithm kind {self.kind!r}; choose from {KINDS}")
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"algorithm {self.name!r} has duplicate parameter names")

    # -- schema ------------------------------------------------------------
    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> ParamSpec:
        return lookup_param(self.params, name, f"algorithm {self.name!r}")

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``params`` against the schema.

        Unknown names and type/choice mismatches raise ``ValueError``;
        ``None`` values (unset) are dropped.  Defaults are *not* filled in
        — that happens at build time against the concrete instance, so a
        request's identity (and cache key) only reflects what the caller
        actually pinned.
        """
        return validate_param_mapping(
            self.params, params, f"algorithm {self.name!r}"
        )

    # -- execution ---------------------------------------------------------
    def run(
        self,
        instance: "Instance",
        params: Mapping[str, Any] | None = None,
        world: "WorldConfig | None" = None,
        trace: "Trace | None" = None,
    ) -> "AlgorithmRun":
        """Validate ``params``, build the program, run it to quiescence.

        ``world`` is the scenario's world model (``None`` means the
        paper's default world).  ``world_aware`` factories receive it as a
        third argument so they can calibrate against it — e.g. scale time
        windows by the world's speed floor; other factories keep the
        two-argument contract.
        """
        from .runner import run_program

        resolved = self.validate_params(params or {})
        if self.max_n is not None and instance.n > self.max_n:
            raise ValueError(
                f"algorithm {self.name!r} is limited to n <= {self.max_n} "
                f"(got n={instance.n})"
            )
        if self.world_aware:
            setup = self.build(instance, resolved, world)
        else:
            setup = self.build(instance, resolved)
        return run_program(
            instance,
            setup.program,
            algorithm=setup.label,
            ell=setup.ell,
            rho=setup.rho,
            budget=setup.budget,
            trace=trace,
            world=world,
        )

    # -- listing -----------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Machine-readable registry entry — the same facts the
        ``freezetag algorithms`` listing prints, for ``--json`` and the
        service's ``GET /algorithms``."""
        return {
            "name": self.name,
            "label": self.label,
            "kind": self.kind,
            "needs_rho": self.needs_rho,
            "supports_budget": self.supports_budget,
            "max_n": self.max_n,
            "world_aware": self.world_aware,
            "description": self.description,
            "params": [p.as_dict() for p in self.params],
        }

    def describe(self) -> str:
        """One line for the ``freezetag algorithms`` listing."""
        schema = ", ".join(p.describe() for p in self.params) or "-"
        flags = [self.kind]
        if self.needs_rho:
            flags.append("needs-rho")
        if self.supports_budget:
            flags.append("budget")
        if self.max_n is not None:
            flags.append(f"n<={self.max_n}")
        return f"{self.name:<16} {self.label:<24} {','.join(flags):<28} {schema}"


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, AlgorithmSpec] = {}
_builtins_loaded = False
_builtins_loading = False


def _ensure_builtins() -> None:
    """Load the built-in registrations exactly once, lazily.

    Lookup functions call this so ``import repro.core.registry`` stays
    cheap and cycle-free; :mod:`repro.core.catalog` registers the shipped
    algorithms on first use.  The loaded flag is only set on *success*:
    if the catalog import fails, its partial registrations are rolled
    back (Python evicts the half-imported module, so a later lookup
    retries the import cleanly instead of reporting a near-empty
    registry — or "already registered" — and masking the root cause).
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    before = set(_REGISTRY)
    try:
        from . import catalog  # noqa: F401  (imported for its registrations)
    except BaseException:
        for name in set(_REGISTRY) - before:
            del _REGISTRY[name]
        raise
    finally:
        _builtins_loading = False
    _builtins_loaded = True


def register_algorithm(
    *,
    name: str,
    label: str,
    kind: str,
    params: tuple[ParamSpec, ...] = (),
    energy_budget: Callable[[int], float] | None = None,
    needs_rho: bool = False,
    supports_budget: bool = False,
    max_n: int | None = None,
    world_aware: bool = False,
    description: str = "",
) -> Callable:
    """Decorator registering a ``build(instance, params) -> RunSetup``
    factory as algorithm ``name``.  Returns the factory unchanged.

    With ``world_aware=True`` the factory is instead called as
    ``build(instance, params, world)`` where ``world`` is the run's
    :class:`~repro.sim.WorldConfig` (or ``None`` for the default world) —
    declared metadata, so the registry never sniffs signatures.

    Duplicate names are rejected — an algorithm's name is its identity in
    sweep specs and cache keys, so silently replacing one would repoint
    existing artifacts at different code.
    """

    def decorator(build: Callable[..., RunSetup]):
        spec = AlgorithmSpec(
            name=name,
            label=label,
            kind=kind,
            build=build,
            params=params,
            energy_budget=energy_budget,
            needs_rho=needs_rho,
            supports_budget=supports_budget,
            max_n=max_n,
            world_aware=world_aware,
            description=description,
        )
        if spec.name in _REGISTRY:
            raise ValueError(f"algorithm {spec.name!r} is already registered")
        _REGISTRY[spec.name] = spec
        return build

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove a registration (test/plugin teardown hook)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a spec by canonical name (``ValueError`` when unknown)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        ) from None


def algorithm_names(kind: str | None = None) -> tuple[str, ...]:
    """Registered names in registration order, optionally filtered by kind."""
    _ensure_builtins()
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if kind is None or spec.kind == kind
    )


def iter_algorithms(kind: str | None = None) -> tuple[AlgorithmSpec, ...]:
    """Registered specs in registration order, optionally filtered by kind."""
    _ensure_builtins()
    return tuple(
        spec for spec in _REGISTRY.values() if kind is None or spec.kind == kind
    )
