"""Instance parameters: radius, connectivity threshold, eccentricity.

These are the three quantities Table 1 of the paper is expressed in:

* :func:`radius` — ``rho_star``, the largest distance from the source to a
  sleeping robot;
* :func:`connectivity_threshold` — ``ell_star``, the least ``delta`` such
  that the ``delta``-disk graph of ``P ∪ {s}`` is connected;
* :func:`ell_eccentricity` — ``xi_ell``, the minimum weighted depth of a
  spanning tree of the ``ell``-disk graph rooted at the source.  The
  shortest-path tree minimizes every root distance simultaneously, hence
  ``xi_ell`` equals the shortest-path eccentricity of the source.

:func:`instance_parameters` bundles all three plus the admissibility check
``ell <= rho <= n * ell`` of Proposition 1 into one summary record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .diskgraph import DiskGraph, bottleneck_connectivity
from .points import Point, max_distance_from

__all__ = [
    "radius",
    "connectivity_threshold",
    "ell_eccentricity",
    "hop_eccentricity",
    "is_admissible",
    "InstanceParameters",
    "instance_parameters",
]


def radius(source: Point, positions: Sequence[Point]) -> float:
    """``rho_star``: largest distance from ``source`` to any position."""
    return max_distance_from(source, positions)


def connectivity_threshold(source: Point, positions: Sequence[Point]) -> float:
    """``ell_star``: least delta connecting the disk graph of ``P ∪ {s}``."""
    return bottleneck_connectivity([source, *positions])


def ell_eccentricity(
    source: Point, positions: Sequence[Point], ell: float
) -> float:
    """``xi_ell``: weighted eccentricity of the source in the ell-disk graph.

    Returns ``math.inf`` when the ``ell``-disk graph of ``P ∪ {s}`` is
    disconnected (the paper's "finite or infinite" minimum depth).
    """
    if not positions:
        return 0.0
    graph = DiskGraph([source, *positions], ell)
    dist = graph.shortest_path_lengths(0)
    return max(dist[1:])


def hop_eccentricity(source: Point, positions: Sequence[Point], ell: float) -> int:
    """Maximum hop count from the source in the ``ell``-disk graph.

    Lemma 6 bounds this by ``1 + 2 * xi_ell / ell``; tests validate that
    inequality.  Returns ``-1`` when some robot is unreachable.
    """
    if not positions:
        return 0
    graph = DiskGraph([source, *positions], ell)
    hops = graph.hop_distances(0)
    return min(hops[1:]) if min(hops[1:]) < 0 else max(hops[1:])


def is_admissible(ell: float, rho: float, n: int) -> bool:
    """Admissibility of an input tuple: ``ell <= rho <= n * ell``.

    (Proposition 1: ``ell_star <= rho_star <= n * ell_star`` always holds,
    so admissible tuples exist for every instance.)
    """
    return 0 < ell <= rho <= n * ell


@dataclass(frozen=True)
class InstanceParameters:
    """Computed parameters of an instance ``(P, s)`` for a given ``ell``."""

    n: int
    rho_star: float
    ell_star: float
    ell: float
    xi_ell: float

    @property
    def connected(self) -> bool:
        """Whether the ``ell``-disk graph is connected (finite ``xi_ell``)."""
        return math.isfinite(self.xi_ell)

    def admissible_input(self, slack: float = 1.0) -> tuple[int, int, int]:
        """An admissible integer tuple ``(ell, rho, n)`` dominating this instance.

        The paper assumes integral ``ell`` and ``rho`` for simplicity
        (Section 1.2): a tuple is admissible iff its ceilings are.  ``slack``
        scales both values, letting experiments probe loose upper bounds.
        """
        ell = max(1, math.ceil(self.ell_star * slack))
        rho = max(ell, math.ceil(self.rho_star * slack))
        n = max(self.n, math.ceil(rho / ell))
        return ell, rho, n


def instance_parameters(
    source: Point, positions: Sequence[Point], ell: float | None = None
) -> InstanceParameters:
    """Compute all instance parameters in one pass.

    ``ell`` defaults to ``ceil(ell_star)`` (the tightest integral upper
    bound the paper would hand to the algorithms).
    """
    ell_star = connectivity_threshold(source, positions)
    if ell is None:
        ell = float(max(1, math.ceil(ell_star)))
    rho_star = radius(source, positions)
    xi = ell_eccentricity(source, positions, ell)
    return InstanceParameters(
        n=len(positions),
        rho_star=rho_star,
        ell_star=ell_star,
        ell=float(ell),
        xi_ell=xi,
    )
