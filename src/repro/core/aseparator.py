"""``ASeparator`` — divide-and-conquer dFTP without energy bounds (Thm 1).

Phase structure (Figure 3 of the paper):

* **Round 0 — Initialization & Recruitment.**  The source, alone, runs
  ``DFSampling`` on the width-``2*rho`` square centered on itself, waking up
  to ``4*ell - 1`` robots, then leads the team to the square's center.
* **Round k >= 1** for a team ``T`` in square ``S``:

  - *Termination* — if ``|T| < 4*ell``, the previous round's sampling
    covered ``S`` (Lemma 5), so every sleeping robot of ``S`` is known: the
    leader executes a centralized wake-up schedule (Lemma 2) and the run
    dissolves.
  - *Partition* — split ``S`` into quadrants and ``T`` into four teams.
  - *Exploration* — each team explores the separator of its quadrant
    (Lemma 1), collecting *seeds*: initial positions of robots found there.
  - *Recruitment* — each team runs ``DFSampling`` in its quadrant, waking
    new robots until the quadrant's prospective team reaches ``4*ell``.
  - *Reorganization* — the four teams rendezvous at the center of ``S``,
    merge knowledge, regroup by home quadrant, and recurse in parallel.

Ownership discipline (the paper's "at most one robot computes a wake-up
tree in a given region", Section 2.2): every robot home belongs to exactly
one half-open quadrant chain, and a team only *wakes* robots it owns —
teams may observe, and even walk through, foreign territory, but never act
on it.  This eliminates wake conflicts by construction.

The module also exposes :func:`embedded_entry` used by ``AWave`` to run the
round structure inside a wave cell starting from an imported team of
``4*ell`` robots (Section 8.2); imported robots (whose homes lie outside
the cell) are handed back through the ``on_release`` continuation at the
first reorganization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..centralized import quadtree_schedule
from ..geometry import Point, Rect, separator_of, square_at_center
from ..sim import Absorb, Annotate, Barrier, Fork, Move, Result, Wait
from ..sim.actions import Action, Program
from ..sim.engine import ProcessView
from .dfsampling import dfsampling
from .explore import ExplorationReport, explore_rect_team
from .knowledge import TeamKnowledge
from .wakeup import AfterFactory, execute_wake_plan, plan_from_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..geometry import FrontierIndex

__all__ = ["SeparatorContext", "aseparator_program", "embedded_entry"]


#: Signature of a centralized solver usable for terminations: it receives
#: the root position, the target positions and the region, and returns a
#: :class:`~repro.centralized.WakeupSchedule` (the Lemma 2 role).
SolverFn = Callable[..., "object"]


@dataclass(frozen=True)
class SeparatorContext:
    """Run-wide parameters threaded through every lineage of one run."""

    ell: int
    key_base: tuple
    imports: frozenset[int] = frozenset()
    after: AfterFactory | None = None       # continuation for robots woken here
    on_release: AfterFactory | None = None  # continuation for imported robots
    solver: SolverFn = quadtree_schedule    # Lemma 2 centralized solver
    #: Optional sparse-frontier oracle: batches cold exploration lattices
    #: into engine sweeps (see :mod:`repro.geometry.frontier`).  ``None``
    #: keeps the per-stop walks — the byte-identical legacy execution.
    frontier: "FrontierIndex | None" = None

    def continuation_for(self, robot_id: int) -> Program | None:
        if robot_id in self.imports:
            return self.on_release(robot_id) if self.on_release else None
        return self.after(robot_id) if self.after else None


def aseparator_program(
    ell: int,
    rho: float,
    after: AfterFactory | None = None,
    key_base: tuple = ("asep",),
    root_square: Rect | None = None,
    owns: Callable[[Point], bool] | None = None,
    solver: SolverFn = quadtree_schedule,
    frontier: "FrontierIndex | None" = None,
) -> Program:
    """Top-level ``ASeparator`` program for the source process.

    ``ell`` and ``rho`` are the paper's inputs (``ell >= ell_star``,
    ``rho >= rho_star``); ``n`` is never used by the algorithm (Section 5).
    ``root_square``/``owns`` override the root region for embedded round-0
    runs (``AWave``'s source cell, where ownership is the cell itself).
    ``frontier`` batches cold exploration lattices into engine sweeps
    (``None`` = the byte-identical per-stop walks).
    """
    if ell < 1:
        raise ValueError("ell must be a positive integer")

    def program(proc: ProcessView) -> Generator[Action, Result, None]:
        source_id = proc.robot_ids[0]
        source_home = proc.position
        square = (
            root_square
            if root_square is not None
            else square_at_center(source_home, 2.0 * rho)
        )
        own = owns if owns is not None else (lambda p: square.contains(p))
        ctx = SeparatorContext(
            ell=ell, key_base=key_base, imports=frozenset(), after=after,
            solver=solver, frontier=frontier,
        )
        knowledge = TeamKnowledge(members={source_id: source_home})
        yield Annotate("asep:init", {"square": tuple(square)})
        yield from dfsampling(
            proc,
            region=square,
            owns=own,
            seeds=[source_home],
            ell=ell,
            recruit_cap=4 * ell - 1,
            knowledge=knowledge,
            key_base=(*key_base, "dfs0"),
            frontier=frontier,
        )
        yield Move(square.center)
        yield from _round_loop(proc, ctx, square, own, knowledge)

    return program


def embedded_entry(
    ctx: SeparatorContext,
    cell: Rect,
    owns: Callable[[Point], bool],
) -> Generator[Action, Result, None] | Callable[[ProcessView], Generator]:
    """Round-``k >= 1`` entry used by ``AWave``: a team of imported robots
    standing at a corner of ``cell`` moves to its center and runs the round
    structure scoped to the cell."""

    def fragment(proc: ProcessView) -> Generator[Action, Result, None]:
        knowledge = TeamKnowledge()
        yield Move(cell.center)
        yield from _round_loop(proc, ctx, cell, owns, knowledge)

    return fragment


# ---------------------------------------------------------------------------
# round machinery
# ---------------------------------------------------------------------------

def _round_loop(
    proc: ProcessView,
    ctx: SeparatorContext,
    square: Rect,
    owns: Callable[[Point], bool],
    knowledge: TeamKnowledge,
) -> Generator[Action, Result, None]:
    """Rounds ``k >= 1`` for the team owned by ``proc`` (at ``square``'s
    center).  The surviving lineage iterates; sibling lineages are forked."""
    while True:
        team = list(proc.robot_ids)
        if len(team) < 4 * ctx.ell:
            yield from _terminate(proc, ctx, square, owns, knowledge)
            return

        yield Annotate("asep:partition", {"square": tuple(square), "team": len(team)})
        quadrants = square.quadrants()
        owns_q = [_quadrant_owns(owns, square, i) for i in range(4)]
        groups = _split_team(team, 4)
        merge_key = (*ctx.key_base, "merge", tuple(square))

        assignments = []
        for i in range(1, 4):
            assignments.append(
                (
                    groups[i],
                    _explorer_program(
                        ctx, i, quadrants[i], owns_q[i], square,
                        knowledge.copy(), merge_key,
                    ),
                )
            )
        yield Fork(assignments)
        payloads = yield from _explore_and_recruit(
            proc, ctx, 0, quadrants[0], owns_q[0], square, knowledge, merge_key
        )
        # Give sibling processes their post-barrier tick to finish (their
        # robots go idle at the center), then take ownership of everyone.
        yield Wait(0.0)
        other_ids = [rid for qi, ids, _, _ in payloads if qi != 0 for rid in ids]
        if other_ids:
            yield Absorb(other_ids)
        for _, _, kn, _ in payloads:
            knowledge.merge(kn)

        # ---- Reorganization: regroup by home quadrant -------------------
        yield Annotate("asep:reorganize", {"square": tuple(square)})
        assign: list[list[int]] = [[], [], [], []]
        imports: list[int] = []
        for rid in proc.robot_ids:
            home = knowledge.members.get(rid)
            if home is None or not owns(home):
                imports.append(rid)
            else:
                assign[square.quadrant_index(home)].append(rid)
        nonempty = [i for i in range(4) if assign[i]]

        if not nonempty:
            # No natives recruited anywhere: every robot we own in this
            # square is already discovered (an unreached cap certifies
            # coverage); wake any stragglers centrally and dissolve.
            yield from _wake_known(proc, ctx, square, knowledge, owns)
            yield from _dissolve(proc, ctx)
            return

        mine = nonempty[0]
        forks: list[tuple[Sequence[int], Program]] = []
        for i in nonempty[1:]:
            forks.append(
                (
                    assign[i],
                    _team_round_program(ctx, quadrants[i], owns_q[i], knowledge.copy()),
                )
            )
        for rid in imports:
            forks.append(([rid], _release_program(ctx, rid)))
        if forks:
            yield Fork(forks)
        # Orphan quadrants: a quadrant can end up with no team although it
        # still owns known sleeping robots — when its only robots were
        # covered by sample nodes owned across the boundary.  Coverage
        # (Lemma 5, cap not reached) guarantees those robots are all
        # *known*, so the surviving team wakes them centrally before
        # recursing into its own quadrant.
        for i in range(4):
            if not assign[i]:
                yield from _wake_known(proc, ctx, quadrants[i], knowledge, owns_q[i])
        yield Move(quadrants[mine].center)
        square, owns = quadrants[mine], owns_q[mine]


def _explore_and_recruit(
    proc: ProcessView,
    ctx: SeparatorContext,
    qi: int,
    quadrant: Rect,
    owns_qi: Callable[[Point], bool],
    parent: Rect,
    knowledge: TeamKnowledge,
    merge_key: tuple,
) -> Generator[Action, Result, list]:
    """Exploration + Recruitment phases for one quadrant team; ends at the
    parent-center barrier and returns the four payloads."""
    yield Annotate("asep:explore", {"quadrant": tuple(quadrant)})
    sep = separator_of(quadrant, ctx.ell)
    report = ExplorationReport()
    for j, rect in enumerate(sep.rectangles()):
        part = yield from explore_rect_team(
            proc, rect, meet_at=rect.lower_left,
            barrier_key=(*merge_key, "sep", qi, j),
            frontier=ctx.frontier,
        )
        report.merge(part)
    for rid, pos in report.sleeping.items():
        if rid not in report.awake:
            knowledge.saw_sleeping(rid, pos)

    seeds: list[Point] = []
    seen: set[tuple[float, float]] = set()
    for pos in list(knowledge.sleeping.values()) + list(knowledge.members.values()):
        if sep.contains(pos) and quadrant.contains(pos):
            key = (pos[0], pos[1])
            if key not in seen:
                seen.add(key)
                seeds.append(pos)

    natives = len(knowledge.members_in(owns_qi))
    cap = 4 * ctx.ell - natives
    yield Annotate("asep:recruit", {"quadrant": tuple(quadrant), "cap": cap})
    outcome = yield from dfsampling(
        proc,
        region=quadrant,
        owns=owns_qi,
        seeds=seeds,
        ell=ctx.ell,
        recruit_cap=cap,
        knowledge=knowledge,
        key_base=(*merge_key, "dfs", qi),
        frontier=ctx.frontier,
    )
    yield Move(parent.center)
    payload = (qi, list(proc.robot_ids), knowledge.copy(), outcome.covered)
    payloads = (yield Barrier(merge_key, 4, payload=payload)).value
    return payloads


def _terminate(
    proc: ProcessView,
    ctx: SeparatorContext,
    square: Rect,
    owns: Callable[[Point], bool],
    knowledge: TeamKnowledge,
) -> Generator[Action, Result, None]:
    """Terminating round: centrally wake every known sleeping robot we own."""
    targets = knowledge.sleeping_in(owns)
    yield Annotate("asep:terminate", {"square": tuple(square), "targets": len(targets)})
    ids = list(proc.robot_ids)
    # Park teammates: the leader alone executes the wake-up tree (Lemma 2's
    # single robot r); teammates leave through their continuations.
    if len(ids) > 1:
        yield Fork([([rid], _release_program(ctx, rid)) for rid in ids[1:]])
    if targets:
        target_ids = sorted(targets)
        positions = [targets[t] for t in target_ids]
        schedule = ctx.solver(proc.position, positions, region=square)
        plan, posmap = plan_from_schedule(schedule, target_ids, root_id=ids[0])
        yield from execute_wake_plan(
            proc, plan, posmap, my_id=ids[0], after=ctx.after
        )
    yield from _dissolve(proc, ctx)


def _wake_known(
    proc: ProcessView,
    ctx: SeparatorContext,
    region: Rect,
    knowledge: TeamKnowledge,
    owns: Callable[[Point], bool],
) -> Generator[Action, Result, None]:
    """Centrally wake every known sleeping robot owned in ``region``.

    Used for orphan quadrants (no team assigned) and the all-empty
    reorganization exit; the whole calling team moves together as the
    propagation root.
    """
    targets = knowledge.sleeping_in(owns)
    if not targets:
        return
    yield Annotate("asep:orphans", {"square": tuple(region), "targets": len(targets)})
    yield Move(region.center)
    target_ids = sorted(targets)
    positions = [targets[t] for t in target_ids]
    schedule = ctx.solver(proc.position, positions, region=region)
    plan, posmap = plan_from_schedule(schedule, target_ids, root_id=proc.robot_ids[0])
    yield from execute_wake_plan(
        proc, plan, posmap, my_id=proc.robot_ids[0], after=ctx.after
    )
    for rid in target_ids:
        knowledge.recruited(rid, targets[rid])


def _dissolve(
    proc: ProcessView, ctx: SeparatorContext
) -> Generator[Action, Result, None]:
    """Release every owned robot through its continuation and finish."""
    ids = list(proc.robot_ids)
    if len(ids) > 1:
        yield Fork([([rid], _release_program(ctx, rid)) for rid in ids[1:]])
    cont = ctx.continuation_for(ids[0])
    if cont is not None:
        yield from cont(proc)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _quadrant_owns(
    owns: Callable[[Point], bool], square: Rect, index: int
) -> Callable[[Point], bool]:
    def predicate(p: Point) -> bool:
        return owns(p) and square.contains(p) and square.quadrant_index(p) == index

    return predicate


def _split_team(team: Sequence[int], parts: int) -> list[list[int]]:
    """Split ids into ``parts`` contiguous groups, sizes differing by <= 1."""
    base, extra = divmod(len(team), parts)
    groups: list[list[int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        groups.append(list(team[start : start + size]))
        start += size
    return groups


def _explorer_program(
    ctx: SeparatorContext,
    qi: int,
    quadrant: Rect,
    owns_qi: Callable[[Point], bool],
    parent: Rect,
    knowledge: TeamKnowledge,
    merge_key: tuple,
) -> Program:
    """Program of a non-survivor exploration team: explore + recruit, meet
    at the parent center, then finish (robots absorbed by the survivor)."""

    def program(proc: ProcessView) -> Generator[Action, Result, None]:
        yield from _explore_and_recruit(
            proc, ctx, qi, quadrant, owns_qi, parent, knowledge, merge_key
        )

    return program


def _team_round_program(
    ctx: SeparatorContext,
    square: Rect,
    owns: Callable[[Point], bool],
    knowledge: TeamKnowledge,
) -> Program:
    """Program of a next-round team: move to its square's center, recurse."""

    def program(proc: ProcessView) -> Generator[Action, Result, None]:
        yield Move(square.center)
        yield from _round_loop(proc, ctx, square, owns, knowledge)

    return program


def _release_program(ctx: SeparatorContext, robot_id: int) -> Program:
    """Program for a robot leaving the run (import hand-back or recruit
    continuation); defaults to idling in place."""
    cont = ctx.continuation_for(robot_id)
    if cont is not None:
        return cont

    def idle(proc: ProcessView) -> Generator[Action, Result, None]:
        return
        yield  # pragma: no cover - makes this function a generator

    return idle
