"""Seeded config generation: determinism, admissibility, mutation."""

from repro.core.registry import get_algorithm
from repro.fuzz import (
    ConfigGenerator,
    CorpusDatabase,
    FuzzConfig,
    coverage_signature,
)


def ids(configs):
    return [c.config_id() for c in configs]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = ConfigGenerator(seed=7).generate(25)
        b = ConfigGenerator(seed=7).generate(25)
        assert ids(a) == ids(b)
        assert len(a) == 25

    def test_different_seeds_diverge(self):
        a = ConfigGenerator(seed=7).generate(25)
        b = ConfigGenerator(seed=8).generate(25)
        assert ids(a) != ids(b)

    def test_no_duplicates_within_a_generator(self):
        gen = ConfigGenerator(seed=3)
        batch = gen.generate(15) + gen.generate(15)
        assert len(set(ids(batch))) == len(batch)


class TestAdmissibility:
    def test_capacity_limited_algorithms_stay_under_max_n(self):
        """Every draw respects the registry's max_n — the guard that keeps
        a mutation from pushing ``exact`` past its capacity and settling
        as a spurious unexpected-exception."""
        configs = ConfigGenerator(seed=11).generate(60)
        for config in configs:
            max_n = get_algorithm(config.algorithm).max_n
            if max_n is not None and config.n_hint is not None:
                assert config.n_hint <= max_n

    def test_every_config_validates_eagerly(self):
        # FuzzConfig construction builds the RunRequest; surviving the
        # generator means surviving both registries.
        configs = ConfigGenerator(seed=19).generate(40)
        assert all(isinstance(c, FuzzConfig) for c in configs)
        assert all(c.mode == "contract" for c in configs)

    def test_sampler_mix_covers_the_roadmap_corners(self):
        configs = ConfigGenerator(seed=0).generate(80)
        scenarios = {c.scenario for c in configs}
        assert scenarios & {"coincident_pairs", "grid_of_disks"}  # degenerate
        assert any("budget" in c.world_params for c in configs)  # cliffs
        assert any(
            c.world_params.get("slow_fraction") or c.world_params.get("crash_on_wake")
            for c in configs
        )  # speed floors / crash patterns
        assert any(c.n_hint == 1 for c in configs)  # n=1 torture


class TestHostileMode:
    def test_bad_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="mode must be one of"):
            ConfigGenerator(mode="chaotic")

    def test_contract_generator_never_draws_hostile(self):
        configs = ConfigGenerator(seed=5).generate(40)
        assert all(c.mode == "contract" for c in configs)

    def test_hostile_generator_mixes_out_of_contract_draws(self):
        configs = ConfigGenerator(seed=5, mode="hostile").generate(40)
        hostile = [c for c in configs if c.mode == "hostile"]
        assert hostile  # the new sampler actually fires
        assert any(c.mode == "contract" for c in configs)  # mixed stream
        for config in hostile:
            # The lie: a pinned ell far below what a spread-out disk needs.
            assert config.params["ell"] in (1, 2)
            assert config.scenario_kwargs["rho"] >= 4.0

    def test_hostile_stream_is_deterministic(self):
        a = ConfigGenerator(seed=21, mode="hostile").generate(30)
        b = ConfigGenerator(seed=21, mode="hostile").generate(30)
        assert ids(a) == ids(b)

    def test_hostile_draws_check_clean(self):
        """An out-of-contract run may strand robots asleep — and that is
        legitimate in hostile mode; every other invariant still holds."""
        from repro.fuzz import check_config

        gen = ConfigGenerator(seed=7, max_n=12, mode="hostile")
        hostile = [c for c in gen.generate(30) if c.mode == "hostile"][:6]
        assert hostile
        outcomes = [check_config(c) for c in hostile]
        assert all(o.ok for o in outcomes)
        # The waiver matters: for a fixed seed at least one draw strands
        # robots, which contract mode would flag as wake-incompleteness.
        assert any(o.stats.get("woke_all") is False for o in outcomes)


class TestMutation:
    def _corpus_with(self, cfg):
        corpus = CorpusDatabase()
        corpus.observe(
            {
                "signature": coverage_signature(cfg, {"n": cfg.n_hint}),
                "config": cfg.as_dict(),
                "ok": True,
            }
        )
        return corpus

    def test_mutations_orbit_the_parent(self):
        parent = FuzzConfig(
            "awave",
            "uniform_disk",
            {"n": 8, "rho": 2.0, "seed": 5},
            world_params={"budget": 16.0},
        )
        gen = ConfigGenerator(
            seed=2, corpus=self._corpus_with(parent), mutation_rate=1.0
        )
        children = gen.generate(10)
        assert children
        # Single-knob mutation: the scenario never changes, and some child
        # actually moved a knob away from the parent.
        assert all(c.scenario == "uniform_disk" for c in children)
        assert any(c.config_id() != parent.config_id() for c in children)
        assert len(set(ids(children))) == len(children)

    def test_zero_mutation_rate_ignores_corpus_content(self):
        """mutation_rate=0 never mutates: two generators fed *different*
        corpora of the same size draw the identical config stream."""
        parent_a = FuzzConfig("greedy", "spiral", {"n": 4, "spacing": 1.0})
        parent_b = FuzzConfig(
            "awave", "uniform_disk", {"n": 9, "rho": 8.0, "seed": 2}
        )
        stream_a = ConfigGenerator(
            seed=13, corpus=self._corpus_with(parent_a), mutation_rate=0.0
        ).generate(20)
        stream_b = ConfigGenerator(
            seed=13, corpus=self._corpus_with(parent_b), mutation_rate=0.0
        ).generate(20)
        assert ids(stream_a) == ids(stream_b)
