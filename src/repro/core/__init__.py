"""The paper's algorithms and building blocks.

* building blocks: :mod:`explore` (Lemma 1), :mod:`wakeup` (Algorithm 1),
  :mod:`dfsampling` (Lemma 5), :mod:`knowledge`;
* algorithms: :mod:`aseparator` (Thm 1), :mod:`agrid` (Thm 4),
  :mod:`awave` (Thm 5), :mod:`radius_estimation` (Section 5);
* entry points: :mod:`runner` (``run_aseparator`` / ``run_agrid`` /
  ``run_awave``).
"""

from .dfsampling import SamplingOutcome, dfsampling
from .explore import (
    SQRT2,
    ExplorationReport,
    exploration_stops,
    exploration_time_bound,
    explore_rect,
    explore_rect_team,
)
from .knowledge import TeamKnowledge
from .runner import AlgorithmRun, run_agrid, run_aseparator, run_awave, run_program
from .spiral import SpiralFind, spiral_search, spiral_stops, spiral_time_bound
from .wakeup import (
    WakePlan,
    execute_wake_plan,
    plan_from_schedule,
    propagation_program,
)

__all__ = [
    "SQRT2",
    "ExplorationReport",
    "exploration_stops",
    "exploration_time_bound",
    "explore_rect",
    "explore_rect_team",
    "TeamKnowledge",
    "SamplingOutcome",
    "dfsampling",
    "WakePlan",
    "execute_wake_plan",
    "plan_from_schedule",
    "propagation_program",
    "AlgorithmRun",
    "run_program",
    "run_aseparator",
    "run_agrid",
    "run_awave",
    "SpiralFind",
    "spiral_search",
    "spiral_stops",
    "spiral_time_bound",
]
