"""Failure injection: the system fails loudly, never silently.

The reproduction's correctness story leans on hard failure modes: energy
overruns raise, window miscalibrations raise, protocol violations raise,
runaway compute loops raise.  These tests inject each fault and assert the
loud failure (and that the world state remains diagnosable).
"""

import math

import pytest

from repro.core.runner import run_agrid, run_aseparator
from repro.geometry import Point
from repro.instances import beaded_path, uniform_disk
from repro.sim import (
    Annotate,
    Engine,
    EnergyBudgetExceeded,
    Look,
    Move,
    ProtocolError,
    RunawayProcessError,
    SOURCE_ID,
    SimulationDeadlock,
    Wait,
    World,
)


class TestEnergyFaults:
    def test_aseparator_with_starved_budget_raises(self):
        """ASeparator assumes unconstrained energy; a tiny budget must
        surface as EnergyBudgetExceeded, not as robots quietly missing."""
        from repro.core.aseparator import aseparator_program

        inst = uniform_disk(n=30, rho=8.0, seed=1)
        ell, rho = inst.default_inputs()
        world = inst.world(budget=5.0)
        engine = Engine(world)
        engine.spawn(aseparator_program(ell=ell, rho=float(rho)), [SOURCE_ID])
        with pytest.raises(EnergyBudgetExceeded) as err:
            engine.run()
        assert err.value.robot_id == SOURCE_ID
        # The world is inspectable post-mortem.
        assert world.source.odometer <= 5.0 + 1e-9

    def test_agrid_with_halved_budget_raises(self):
        """Enforcing half the certified budget must trip the engine check
        (the budget function is not grossly over-provisioned)."""
        from repro.core.agrid import agrid_energy_budget, agrid_program

        inst = beaded_path(n=20, spacing=1.0)
        world = inst.world(budget=agrid_energy_budget(1) / 40.0)
        engine = Engine(world)
        engine.spawn(agrid_program(ell=1), [SOURCE_ID])
        with pytest.raises(EnergyBudgetExceeded):
            engine.run()


class TestWindowFaults:
    def test_agrid_window_miscalibration_raises(self, monkeypatch):
        """Shrinking the window arithmetic must trigger the loud overrun
        assertion, not silent wave corruption."""
        import repro.core.agrid as agrid_mod

        real_window = agrid_mod.agrid_window
        monkeypatch.setattr(
            agrid_mod, "agrid_window", lambda ell: real_window(ell) / 20.0
        )
        inst = beaded_path(n=10, spacing=1.0)
        with pytest.raises(ProtocolError, match="window calibration"):
            run_agrid(inst, ell=1)


class TestEngineFaults:
    def test_runaway_zero_time_loop_detected(self, monkeypatch):
        import repro.sim.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_MAX_IMMEDIATE_ACTIONS", 50)
        world = World(source=Point(0, 0), positions=[])
        engine = Engine(world)

        def spinner(proc):
            while True:
                yield Annotate("spin")

        engine.spawn(spinner, [SOURCE_ID])
        with pytest.raises(RunawayProcessError):
            engine.run()

    def test_partial_progress_preserved_after_fault(self):
        """A fault mid-run leaves already-woken robots awake (post-mortem
        state is meaningful for debugging)."""
        world = World(
            source=Point(0, 0),
            positions=[Point(1, 0), Point(50, 0)],
            budget=10.0,
        )
        engine = Engine(world)

        def program(proc):
            from repro.sim import Wake

            yield Move(Point(1, 0))
            yield Wake(1)
            yield Move(Point(50, 0))  # blows the budget

        engine.spawn(program, [SOURCE_ID])
        with pytest.raises(EnergyBudgetExceeded):
            engine.run()
        assert world.robots[1].awake
        assert not world.robots[2].awake
        assert world.last_wake_time == pytest.approx(1.0)

    def test_engine_run_until_checkpointing(self):
        """run(until=...) pauses the world mid-flight and resumes exactly."""
        world = World(source=Point(0, 0), positions=[])
        engine = Engine(world)

        def program(proc):
            yield Move(Point(10, 0))
            yield Wait(5.0)

        engine.spawn(program, [SOURCE_ID])
        partial = engine.run(until=3.0)
        assert partial.termination_time <= 3.0
        final = engine.run()
        assert final.termination_time == pytest.approx(15.0)
        assert world.source.position == Point(10, 0)
