"""Exact branch-and-bound solver for tiny centralized Freeze Tag instances.

Freeze Tag is NP-hard even in the plane [AAJ17], so exhaustive search is
only feasible for very small ``n`` (≤ ~8).  The solver enumerates wake
forests through a canonical event order — always branching on the awake
robot with the earliest free time, which may either wake any remaining
sleeper or *retire* — and prunes with two bounds:

* the best makespan found so far;
* an admissible lower bound: every remaining sleeper must still be reached
  from some awake robot, so ``max over remaining of min over awake of
  (free_time + distance)`` is a valid completion bound.

The exact optimum lets tests measure the approximation ratio of the
quadtree and greedy strategies on random micro-instances.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..geometry import Point, distance
from .schedule import ROOT, WakeupSchedule

__all__ = ["exact_schedule", "exact_makespan"]

_MAX_EXACT_N = 9


def exact_schedule(root: Point, positions: Sequence[Point]) -> WakeupSchedule:
    """Provably optimal schedule (raises ``ValueError`` for n > 9)."""
    n = len(positions)
    if n > _MAX_EXACT_N:
        raise ValueError(
            f"exact solver limited to n <= {_MAX_EXACT_N} (got {n}); "
            "Freeze Tag is NP-hard"
        )
    if n == 0:
        return WakeupSchedule.build(root, positions, {})

    pts = list(positions)
    best_makespan = math.inf
    best_orders: dict[int, list[int]] | None = None

    # State: awake = dict waker -> (pos, free_time, retired); orders built
    # incrementally and copied only on improvement.
    orders: dict[int, list[int]] = {}

    def lower_bound(awake: dict, remaining: frozenset[int], current: float) -> float:
        bound = current
        for t in remaining:
            reach = min(
                free + distance(pos, pts[t])
                for pos, free, retired in awake.values()
                if not retired
            )
            bound = max(bound, reach)
        return bound

    def search(awake: dict, remaining: frozenset[int], current_makespan: float) -> None:
        nonlocal best_makespan, best_orders
        if not remaining:
            if current_makespan < best_makespan - 1e-12:
                best_makespan = current_makespan
                best_orders = {k: list(v) for k, v in orders.items()}
            return
        active = {k: v for k, v in awake.items() if not v[2]}
        if not active:
            return
        if lower_bound(active, remaining, current_makespan) >= best_makespan - 1e-12:
            return
        # Canonical branching: the active robot with the earliest free time
        # acts next (ties by key).  Any schedule can be serialized this way,
        # so canonicalization loses no solutions.
        waker = min(active, key=lambda k: (active[k][1], k))
        pos, free, _ = awake[waker]
        # Option 1: wake each remaining target next.
        for target in sorted(remaining):
            arrival = free + distance(pos, pts[target])
            if max(current_makespan, arrival) >= best_makespan - 1e-12:
                continue
            orders.setdefault(waker, []).append(target)
            awake[waker] = (pts[target], arrival, False)
            awake[target] = (pts[target], arrival, False)
            search(awake, remaining - {target}, max(current_makespan, arrival))
            del awake[target]
            awake[waker] = (pos, free, False)
            orders[waker].pop()
            if not orders[waker]:
                del orders[waker]
        # Option 2: retire this robot (it wakes nobody else).
        awake[waker] = (pos, free, True)
        search(awake, remaining, current_makespan)
        awake[waker] = (pos, free, False)

    search({ROOT: (root, 0.0, False)}, frozenset(range(n)), 0.0)
    assert best_orders is not None
    return WakeupSchedule.build(root, positions, best_orders)


def exact_makespan(root: Point, positions: Sequence[Point]) -> float:
    """Optimal makespan (convenience wrapper)."""
    return exact_schedule(root, positions).makespan()
