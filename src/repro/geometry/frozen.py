"""Vectorized frozen spatial index for the static sleeping-robot set.

The sleeping index is the hottest geometric structure in the simulator:
every ``Look`` snapshot queries it, and at scale (10^5 sleepers) the
per-point Python loop of :class:`~repro.geometry.gridhash.GridHash`
dominates the run.  Sleeping robots never *move* — they only disappear
one by one as they wake — so the index can be packed once at
:class:`~repro.sim.world.World` construction:

* positions are laid out in two contiguous ``float64`` arrays, grouped
  by grid cell (cell -> one ``(start, stop)`` slice);
* a wake is an O(1) flip of a boolean *active* mask — no repacking;
* ``query_ball`` gathers the candidate slices of the covering cell block
  and answers with a vectorized squared-distance mask; tiny candidate
  sets short-circuit into a scalar loop, which beats array overhead at
  typical snapshot densities.

Boundary semantics are *identical* to ``GridHash.query_ball`` (and hence
to the brute-force ``math.hypot`` oracle): membership is the closed
Euclidean ball of radius ``radius + tol``, squared distances within a
relative band of the boundary are re-checked with ``math.hypot`` so that
squaring rounding (or subnormal underflow) never flips a decision.  The
equivalence is pinned by randomized property tests in
``tests/geometry/test_frozen.py``.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Sequence

try:  # numpy is a hard dependency of the package, but degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on broken installs
    _np = None

from .points import EPS, Point

__all__ = ["FrozenGridHash", "HAVE_NUMPY"]

#: Whether the vectorized backend is available (callers may fall back to
#: the mutable :class:`~repro.geometry.gridhash.GridHash` when not).
HAVE_NUMPY = _np is not None

#: Below this many points in a cell, a scalar loop beats numpy call
#: overhead for that cell's slice.
_SCALAR_CUTOFF = 48

#: Packed cell key: ``(ix << 32) + iy`` (exact for Python ints).
_Cell = int


class FrozenGridHash:
    """Immutable-position point index with O(1) deactivation.

    Supports exactly the operations the world's sleeping index needs:
    closed-ball queries (``query_ball`` / ``query_keys``), removal of a
    woken robot (``remove`` / ``discard``) and cardinality.  Keys are
    arbitrary hashables fixed at construction; positions never change.
    """

    def __init__(
        self,
        positions: Sequence[Point],
        cell_size: float,
        keys: Sequence[Hashable] | None = None,
    ) -> None:
        if _np is None:  # pragma: no cover - exercised only on broken installs
            raise RuntimeError(
                "FrozenGridHash requires numpy; use geometry.GridHash instead"
            )
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        points = list(positions)
        n = len(points)
        if keys is None:
            key_list: list[Hashable] = list(range(n))
        else:
            key_list = list(keys)
            if len(key_list) != n:
                raise ValueError("keys and positions must have equal length")
            if len(set(key_list)) != n:
                raise ValueError("duplicate keys")
        size = self.cell_size
        # Vectorized packing: compute every point's cell, stable-sort by
        # cell (ties keep input order — the same within-cell enumeration
        # convention as GridHash), then cut the sorted array into one
        # contiguous slice per populated cell.
        if n:
            # zip(*points) + np.array beats np.asarray(points): the latter
            # walks the sequence protocol of every NamedTuple element.
            xs_in, ys_in = zip(*points)
            xs_all = _np.array(xs_in, dtype=_np.float64)
            ys_all = _np.array(ys_in, dtype=_np.float64)
            cell_ix = _np.floor(xs_all / size).astype(_np.int64)
            cell_iy = _np.floor(ys_all / size).astype(_np.int64)
            order = _np.lexsort((cell_iy, cell_ix))
            self._xs = xs_all[order]
            self._ys = ys_all[order]
            ix_sorted = cell_ix[order]
            iy_sorted = cell_iy[order]
            breaks = _np.nonzero(
                (ix_sorted[1:] != ix_sorted[:-1]) | (iy_sorted[1:] != iy_sorted[:-1])
            )[0]
            edges = [0, *(b + 1 for b in breaks.tolist()), n]
            run_ix = ix_sorted[edges[:-1]].tolist()
            run_iy = iy_sorted[edges[:-1]].tolist()
            # Cells key by the packed int ``(ix << 32) + iy`` (exact for
            # Python ints): no tuple allocation per probe in query_ball,
            # and int hashing is cheaper than tuple hashing.
            self._cells: dict[int, tuple[int, int]] = {
                (run_ix[i] << 32) + run_iy[i]: (edges[i], edges[i + 1])
                for i in range(len(run_ix))
            }
            order_list = order.tolist()
            self._points: list[Point] = [points[i] for i in order_list]
            self._keys: list[Hashable] = [key_list[i] for i in order_list]
        else:
            self._xs = _np.empty(0, dtype=_np.float64)
            self._ys = _np.empty(0, dtype=_np.float64)
            self._cells = {}
            self._points = []
            self._keys = []
        # Active mask, twice: a numpy array for the vectorized branch and a
        # bytearray mirror for the scalar branch (per-element numpy reads
        # are an order of magnitude slower than a bytearray index).
        self._active = _np.ones(n, dtype=bool)
        self._alive = bytearray(b"\x01") * n
        # key -> packed slot, built lazily on the first keyed operation: a
        # run that never wakes anyone (pure query workloads) skips it.
        self._index_lazy: dict[Hashable, int] | None = None
        self._count = n

    @property
    def _index_of(self) -> dict[Hashable, int]:
        index = self._index_lazy
        if index is None:
            index = self._index_lazy = {
                key: slot for slot, key in enumerate(self._keys)
            }
        return index

    # -- mutation (deactivation only) --------------------------------------
    def remove(self, key: Hashable) -> Point:
        """Deactivate ``key`` and return its position (KeyError if absent)."""
        slot = self._index_of.pop(key)
        self._active[slot] = False
        self._alive[slot] = 0
        self._count -= 1
        return self._points[slot]

    def discard(self, key: Hashable) -> None:
        """Deactivate ``key`` if present, silently otherwise."""
        if key in self._index_of:
            self.remove(key)

    # -- lookup --------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index_of

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._index_of)

    def position_of(self, key: Hashable) -> Point:
        return self._points[self._index_of[key]]

    def items(self) -> list[tuple[Hashable, Point]]:
        return [(key, self._points[slot]) for key, slot in self._index_of.items()]

    def query_ball(
        self, center: Point, radius: float, tol: float = EPS
    ) -> list[tuple[Hashable, Point]]:
        """All active ``(key, position)`` within the closed ball.

        Same membership predicate as ``GridHash.query_ball``: distance
        (``math.hypot``) at most ``radius + tol``, with the squared-
        distance boundary band re-checked exactly.
        """
        if radius < 0 or self._count == 0:
            return []
        limit = radius + tol
        size = self.cell_size
        x0 = float(center[0])
        y0 = float(center[1])
        # Ulp-padded per-axis cell range — see GridHash.query_ball for why
        # the pad is needed (computed-hypot membership admits points a few
        # ulps outside the exact interval).
        sx = limit + limit * 1e-12 + abs(x0) * 1e-15
        sy = limit + limit * 1e-12 + abs(y0) * 1e-15
        ix_min = int(math.floor((x0 - sx) / size))
        ix_max = int(math.floor((x0 + sx) / size))
        iy_min = int(math.floor((y0 - sy) / size))
        iy_max = int(math.floor((y0 + sy) / size))
        cells_get = self._cells.get
        limit_sq = limit * limit
        lo = limit_sq * (1.0 - 1e-12)
        hi = limit_sq * (1.0 + 1e-12)
        alive = self._alive
        points = self._points
        keys = self._keys
        found: list[tuple[Hashable, Point]] = []
        append = found.append
        for ix in range(ix_min, ix_max + 1):
            base = ix << 32
            for iy in range(iy_min, iy_max + 1):
                span = cells_get(base + iy)
                if span is None:
                    continue
                start, stop = span
                if stop - start < _SCALAR_CUTOFF:
                    # Scalar: at snapshot densities (a handful of points
                    # per cell) a tight loop beats numpy call overhead.
                    slot = start
                    while slot < stop:
                        if alive[slot]:
                            pos = points[slot]
                            dx = pos[0] - x0
                            dy = pos[1] - y0
                            d_sq = dx * dx + dy * dy
                            if d_sq < lo or (
                                d_sq <= hi and math.hypot(dx, dy) <= limit
                            ):
                                append((keys[slot], pos))
                        slot += 1
                else:
                    # Vectorized squared-distance mask over the cell slice;
                    # candidates in the rounding band re-checked exactly.
                    dx = self._xs[start:stop] - x0
                    dy = self._ys[start:stop] - y0
                    d_sq = dx * dx + dy * dy
                    mask = self._active[start:stop] & (d_sq <= hi)
                    for local in _np.nonzero(mask)[0]:
                        slot = start + int(local)
                        if d_sq[local] < lo or math.hypot(
                            float(dx[local]), float(dy[local])
                        ) <= limit:
                            append((keys[slot], points[slot]))
        return found

    def query_keys(
        self, center: Point, radius: float, tol: float = EPS
    ) -> list[Hashable]:
        """Keys only, for callers that do not need positions."""
        return [key for key, _ in self.query_ball(center, radius, tol)]
