"""GridHash correctness: queries must match brute force exactly."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridHash, Point, distance

coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=60)


class TestBasics:
    def test_insert_remove_roundtrip(self):
        g = GridHash(1.0)
        g.insert("a", Point(0.3, 0.7))
        assert "a" in g and len(g) == 1
        assert g.position_of("a") == Point(0.3, 0.7)
        assert g.remove("a") == Point(0.3, 0.7)
        assert "a" not in g and len(g) == 0

    def test_duplicate_key_raises(self):
        g = GridHash(1.0)
        g.insert(1, Point(0, 0))
        with pytest.raises(KeyError):
            g.insert(1, Point(1, 1))

    def test_discard_is_silent(self):
        g = GridHash(1.0)
        g.discard("missing")
        g.insert("x", Point(0, 0))
        g.discard("x")
        assert len(g) == 0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridHash(0.0)

    def test_from_points(self):
        g = GridHash.from_points([Point(0, 0), Point(2, 2)], cell_size=1.0)
        assert len(g) == 2
        assert g.position_of(1) == Point(2, 2)


class TestQueryBall:
    @given(point_lists, st.tuples(coords, coords), st.floats(0.0, 20.0))
    def test_matches_brute_force(self, pts, center_xy, radius):
        g = GridHash(1.3)
        for i, (x, y) in enumerate(pts):
            g.insert(i, Point(x, y))
        center = Point(*center_xy)
        got = sorted(k for k, _ in g.query_ball(center, radius, tol=0.0))
        want = sorted(
            i
            for i, (x, y) in enumerate(pts)
            if distance(Point(x, y), center) <= radius
        )
        assert got == want

    def test_closed_ball_with_tolerance(self):
        g = GridHash(1.0)
        g.insert("edge", Point(1.0, 0.0))
        assert g.query_keys(Point(0, 0), 1.0) == ["edge"]

    def test_subnormal_offset_respects_boundary(self):
        # Regression: 5e-324**2 underflows to 0.0, so the squared-distance
        # fast path alone would leak this point into a radius-0 query.
        g = GridHash(1.3)
        g.insert("off", Point(5e-324, 0.0))
        assert g.query_ball(Point(0.0, 0.0), 0.0, tol=0.0) == []
        assert distance(Point(5e-324, 0.0), Point(0.0, 0.0)) > 0.0
        # The exact center still matches a radius-0 closed ball.
        g.insert("hit", Point(0.0, 0.0))
        assert g.query_keys(Point(0.0, 0.0), 0.0, tol=0.0) == ["hit"]

    def test_negative_radius(self):
        g = GridHash(1.0)
        g.insert(0, Point(0, 0))
        assert g.query_ball(Point(0, 0), -1.0) == []

    def test_query_spanning_many_cells(self):
        g = GridHash(1.0)
        for i in range(100):
            g.insert(i, Point(i * 0.5, 0.0))
        found = g.query_keys(Point(25.0, 0.0), 10.0)
        assert len(found) == 41  # positions 15.0 .. 35.0 inclusive


class TestNearest:
    def test_nearest_empty(self):
        assert GridHash(1.0).nearest(Point(0, 0)) is None

    @given(point_lists.filter(bool), st.tuples(coords, coords))
    def test_nearest_matches_brute_force(self, pts, center_xy):
        g = GridHash(0.9)
        for i, (x, y) in enumerate(pts):
            g.insert(i, Point(x, y))
        center = Point(*center_xy)
        _key, pos = g.nearest(center)
        best = min(distance(Point(x, y), center) for x, y in pts)
        assert distance(pos, center) == pytest.approx(best)

    def test_nearest_far_from_points(self):
        g = GridHash(1.0)
        g.insert("only", Point(100.0, 100.0))
        key, pos = g.nearest(Point(0, 0))
        assert key == "only"


class TestMoveKey:
    def test_same_cell_move_updates_position(self):
        g = GridHash(1.0)
        g.insert("a", Point(0.1, 0.1))
        g.move_key("a", Point(0.4, 0.6))
        assert g.position_of("a") == Point(0.4, 0.6)
        assert g.query_keys(Point(0.4, 0.6), 0.01) == ["a"]

    def test_cross_cell_move_rebuckets(self):
        g = GridHash(1.0)
        g.insert("a", Point(0.5, 0.5))
        g.insert("b", Point(0.6, 0.5))
        g.move_key("a", Point(5.5, 5.5))
        assert g.query_keys(Point(0.6, 0.5), 0.2) == ["b"]
        assert g.query_keys(Point(5.5, 5.5), 0.2) == ["a"]
        # Nearest still sees the moved key at its new home.
        key, pos = g.nearest(Point(5.0, 5.0))
        assert key == "a" and pos == Point(5.5, 5.5)

    def test_missing_key_raises(self):
        g = GridHash(1.0)
        with pytest.raises(KeyError):
            g.move_key("ghost", Point(0, 0))

    def test_move_sequence_matches_fresh_index(self):
        rng = random.Random(7)
        g = GridHash(0.8)
        positions = {}
        for key in range(30):
            p = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
            g.insert(key, p)
            positions[key] = p
        for _ in range(200):
            key = rng.randrange(30)
            p = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
            g.move_key(key, p)
            positions[key] = p
        fresh = GridHash(0.8)
        for key, p in positions.items():
            fresh.insert(key, p)
        probe = Point(0.0, 0.0)
        assert sorted(g.query_ball(probe, 4.0)) == sorted(fresh.query_ball(probe, 4.0))
        assert g.nearest(probe)[1] == fresh.nearest(probe)[1]


class TestNearestBounds:
    def test_nearest_after_boundary_removals(self):
        """The incremental bbox must recompute when boundary cells empty."""
        g = GridHash(1.0)
        g.insert("far", Point(50.0, 50.0))
        g.insert("near", Point(1.0, 1.0))
        assert g.nearest(Point(0, 0))[0] == "near"
        g.remove("far")  # boundary cell emptied -> bounds marked stale
        assert g.nearest(Point(0, 0))[0] == "near"
        g.remove("near")
        assert g.nearest(Point(0, 0)) is None
        g.insert("back", Point(-3.0, 2.0))
        assert g.nearest(Point(0, 0))[0] == "back"

    def test_nearest_many_removals_interleaved(self):
        rng = random.Random(3)
        g = GridHash(1.0)
        pts = {}
        for key in range(60):
            p = Point(rng.uniform(-20, 20), rng.uniform(-20, 20))
            g.insert(key, p)
            pts[key] = p
        for key in list(pts)[::2]:
            g.remove(key)
            del pts[key]
        probe = Point(2.0, -3.0)
        best = min(pts.values(), key=lambda p: distance(p, probe))
        assert g.nearest(probe)[1] == best
