"""The tracked-baseline machinery: workloads, measurement, tolerance gate."""

import json

import pytest

from repro.experiments.bench import (
    BenchWorkload,
    Measurement,
    SuiteReport,
    baseline_path,
    bench_workloads,
    compare,
    measure,
    run_suite,
)


def tiny_workload(name="tiny", suite="engine", tier="quick", events=7):
    return BenchWorkload(
        name=name, suite=suite, tier=tier, repeat=2,
        runner=lambda: events, meta={"kind": "test"},
    )


class TestRegistry:
    def test_shipped_workloads_well_formed(self):
        names = [w.name for w in bench_workloads()]
        assert len(names) == len(set(names))
        suites = {w.suite for w in bench_workloads()}
        assert suites == {"engine", "scale"}
        # The acceptance workloads exist under stable names.
        assert "move_look_cycle" in names
        assert "agrid_uniform_100k" in names
        assert "awave_uniform_5k" in names
        assert "awave_uniform_20k" in names
        # The CI-gated AWave scale point rides the quick tier.
        by_name = {w.name: w for w in bench_workloads()}
        assert by_name["awave_uniform_5k"].tier == "quick"

    def test_bad_suite_or_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            BenchWorkload("x", "nope", "quick", lambda: 0)
        with pytest.raises(ValueError, match="unknown tier"):
            BenchWorkload("x", "engine", "sometimes", lambda: 0)
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")
        with pytest.raises(ValueError, match="unknown tier"):
            run_suite("engine", tier="later")


class TestMeasurement:
    def test_measure_returns_best_of_repeat(self):
        m = measure(tiny_workload())
        assert m.name == "tiny"
        assert m.events == 7
        assert m.wall_s >= 0.0
        assert m.events_per_s > 0.0
        assert m.peak_rss_mb > 0.0

    def test_run_suite_tier_filter(self):
        pool = [
            tiny_workload("a", tier="quick"),
            tiny_workload("b", tier="full"),
        ]
        quick = run_suite("engine", tier="quick", workloads=pool)
        assert [m.name for m in quick.measurements] == ["a"]
        full = run_suite("engine", tier="full", workloads=pool)
        assert [m.name for m in full.measurements] == ["a", "b"]

    def test_report_roundtrip(self, tmp_path):
        report = run_suite(
            "engine", workloads=[tiny_workload("a"), tiny_workload("b")]
        )
        path = report.write(tmp_path)
        assert path == baseline_path("engine", tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert sorted(payload["workloads"]) == ["a", "b"]
        assert payload["workloads"]["a"]["meta"] == {"kind": "test"}

    def test_quick_rewrite_preserves_full_tier_entries(self, tmp_path):
        """Refreshing with the quick tier must not drop committed
        full-tier baselines (the 100k run) — merge-on-write."""
        pool = [tiny_workload("quick_w", tier="quick"),
                tiny_workload("full_w", tier="full")]
        run_suite("engine", tier="full", workloads=pool).write(tmp_path)
        full_payload = json.loads(baseline_path("engine", tmp_path).read_text())
        assert sorted(full_payload["workloads"]) == ["full_w", "quick_w"]

        run_suite("engine", tier="quick", workloads=pool).write(tmp_path)
        merged = json.loads(baseline_path("engine", tmp_path).read_text())
        assert sorted(merged["workloads"]) == ["full_w", "quick_w"]
        assert merged["tier"] == "full"  # still a full-tier baseline
        assert (
            merged["workloads"]["full_w"]
            == full_payload["workloads"]["full_w"]
        )


def report_with(name_to_wall):
    return SuiteReport(
        suite="engine",
        tier="quick",
        measurements=[
            Measurement(
                name=name, wall_s=wall, events=100,
                events_per_s=100.0 / wall, peak_rss_mb=10.0, meta={},
            )
            for name, wall in name_to_wall.items()
        ],
    )


def baseline_with(name_to_wall):
    return report_with(name_to_wall).as_dict()


class TestCompareGate:
    def test_within_tolerance_passes(self):
        deltas, ok = compare(
            baseline_with({"a": 1.0}), report_with({"a": 1.2}), tolerance=0.25
        )
        assert ok
        assert [d.kind for d in deltas] == ["ok"]

    def test_regression_fails(self):
        deltas, ok = compare(
            baseline_with({"a": 1.0}), report_with({"a": 1.3}), tolerance=0.25
        )
        assert not ok
        assert [d.kind for d in deltas] == ["regression"]
        assert "REGRESSION" in deltas[0].line()

    def test_improvement_passes_but_flags(self):
        deltas, ok = compare(
            baseline_with({"a": 1.0}), report_with({"a": 0.5}), tolerance=0.25
        )
        assert ok
        assert [d.kind for d in deltas] == ["improvement"]

    def test_new_and_missing_pass(self):
        deltas, ok = compare(
            baseline_with({"gone": 1.0}), report_with({"fresh": 1.0})
        )
        assert ok
        kinds = sorted(d.kind for d in deltas)
        assert kinds == ["missing", "new"]

    def test_exact_boundary_is_ok(self):
        # rel == tolerance must pass (gate is strict-greater).
        deltas, ok = compare(
            baseline_with({"a": 1.0}), report_with({"a": 1.25}), tolerance=0.25
        )
        assert ok


class TestEngineWorkloadsSmoke:
    def test_move_look_cycle_small(self):
        from repro.experiments.bench import run_move_look_cycle
        from repro.sim import NullTrace

        events = run_move_look_cycle(cycles=50, n=200, trace=NullTrace())
        assert events > 50

    def test_polyline_small(self):
        from repro.experiments.bench import run_polyline
        from repro.sim import NullTrace

        events = run_polyline(waypoints=40, repeats=2, trace=NullTrace())
        assert events > 80

    def test_scale_request_small(self):
        from repro.experiments.bench import run_scale_request

        events = run_scale_request(
            "agrid", n=40, rho=8.0, params={"ell": 2, "rho": 8.0}
        )
        assert events > 0


class TestCli:
    def test_bench_write_and_check(self, tmp_path, monkeypatch, capsys):
        from repro import cli
        from repro.experiments import bench as bench_mod

        pool = (tiny_workload("a"),)
        monkeypatch.setattr(bench_mod, "bench_workloads", lambda: pool)
        rc = cli.main(["bench", "--suite", "engine", "--out", str(tmp_path)])
        assert rc == 0
        assert baseline_path("engine", tmp_path).exists()
        rc = cli.main(
            ["bench", "--suite", "engine", "--out", str(tmp_path), "--check"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tolerance" in out

    def test_bench_check_missing_baseline_fails(self, tmp_path, monkeypatch):
        from repro import cli
        from repro.experiments import bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "bench_workloads", lambda: (tiny_workload("a"),)
        )
        rc = cli.main(
            ["bench", "--suite", "engine", "--out", str(tmp_path), "--check"]
        )
        assert rc == 1
