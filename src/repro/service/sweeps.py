"""Resident sweep state: one submitted spec from POST to settled records.

A :class:`SweepRun` is the in-memory twin of a PR-6
:class:`~repro.experiments.manifest.SweepManifest`: the manifest is the
durable job ledger under the cache directory, the run adds what only a
live process knows — per-job *running* state, per-job failures, the
settle event log the SSE stream replays, and the records themselves in
spec-expansion order.

Identity: a sweep's id IS its spec fingerprint
(:func:`~repro.experiments.manifest.spec_fingerprint` over the ordered
job keys), so resubmitting an identical spec resolves to the same run —
the submission-level half of the dedup story (the scheduler's in-flight
table is the job-level half, catching *different* specs that share
jobs).

All mutation happens on the event loop thread (the run task), matching
the scheduler's single-writer discipline.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, AsyncIterator, Sequence

from ..core.runner import RunRequest
from ..experiments.cache import ResultCache, request_key
from ..experiments.harness import SweepSpec
from ..experiments.manifest import SweepManifest, spec_fingerprint
from .scheduler import JobError, JobScheduler

__all__ = ["SweepRun"]

#: Cap on per-sweep outstanding settle() calls: the scheduler already
#: bounds real execution by worker count, this only bounds task objects.
_MAX_OUTSTANDING = 256


class SweepRun:
    """One accepted sweep: jobs, live statuses, records, event log."""

    def __init__(
        self,
        spec: SweepSpec,
        requests: Sequence[RunRequest],
        cache: ResultCache,
    ) -> None:
        self.spec = spec
        self.requests = list(requests)
        self.keys = [request_key(request) for request in self.requests]
        self.sweep_id = spec_fingerprint(spec.name, self.keys)
        self.labels = [request.label() for request in self.requests]
        self.manifest = SweepManifest.for_spec(spec, self.requests, cache)
        #: per-job: "pending" | "running" | "done" | "cached" | "error"
        #: ("done" covers both executed and deduped settles — the job's
        #: record exists either way; ``origins`` keeps the distinction).
        self.statuses = ["pending"] * len(self.requests)
        self.origins: list[str | None] = [None] * len(self.requests)
        self.errors: dict[int, dict[str, Any]] = {}
        self.records: list[dict[str, Any] | None] = [None] * len(self.requests)
        self.created = time.time()
        self.finished_at: float | None = None
        self.task: asyncio.Task | None = None
        self._events: list[dict[str, Any]] = []
        self._subscribers: set[asyncio.Queue] = set()

    # -- derived state ------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.requests)

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def settled(self) -> int:
        return sum(
            1 for status in self.statuses if status in ("done", "cached", "error")
        )

    def counts(self) -> dict[str, int]:
        by_status = {
            "done": 0, "cached": 0, "error": 0, "running": 0, "pending": 0,
        }
        for status in self.statuses:
            by_status[status] += 1
        deduped = sum(1 for origin in self.origins if origin == "deduped")
        return {
            "total": self.total,
            "settled": self.settled,
            "executed": by_status["done"] - deduped,
            "deduped": deduped,
            "cached": by_status["cached"],
            "failed": by_status["error"],
            "running": by_status["running"],
            "pending": by_status["pending"],
        }

    def status_payload(self) -> dict[str, Any]:
        """The ``GET /sweeps/{id}`` body for a resident sweep."""
        state = "done" if self.finished else "running"
        return {
            "id": self.sweep_id,
            "name": self.spec.name,
            "state": state,
            "resident": True,
            "created": self.created,
            "elapsed_s": (self.finished_at or time.time()) - self.created,
            "counts": self.counts(),
            "errors": [
                self.errors[index] for index in sorted(self.errors)
            ],
            "manifest": str(self.manifest.path),
        }

    def settled_records(self) -> list[dict[str, Any]]:
        """Records of settled jobs, in spec-expansion order (failed and
        unsettled jobs are simply absent)."""
        return [record for record in self.records if record is not None]

    # -- event stream -------------------------------------------------------

    def _publish(self, event: dict[str, Any]) -> None:
        self._events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)

    async def events(self) -> AsyncIterator[dict[str, Any]]:
        """Replay the settle log, then stream live until the end event.

        The snapshot and the subscription happen with no ``await`` in
        between, so no event is lost or duplicated across the seam.
        """
        queue: asyncio.Queue = asyncio.Queue()
        snapshot = list(self._events)
        self._subscribers.add(queue)
        try:
            for event in snapshot:
                yield event
                if event["event"] == "end":
                    return
            while True:
                event = await queue.get()
                yield event
                if event["event"] == "end":
                    return
        finally:
            self._subscribers.discard(queue)

    # -- execution ----------------------------------------------------------

    async def run(self, scheduler: JobScheduler) -> None:
        """Settle every job through the shared scheduler.

        Failures mark their job ``error`` and keep going — a poisoned
        request never takes its siblings (or the service) down.  The
        manifest records settles exactly as a CLI ``run_sweep`` would,
        so ``freezetag sweep --resume`` and the service stay
        interchangeable views of the same ledger.
        """
        limit = asyncio.Semaphore(_MAX_OUTSTANDING)

        async def one(index: int, request: RunRequest) -> None:
            async with limit:
                self.statuses[index] = "running"
                try:
                    record, origin, elapsed = await scheduler.settle(request)
                except JobError as exc:
                    self.statuses[index] = "error"
                    self.origins[index] = "failed"
                    self.errors[index] = {
                        "index": index,
                        "label": self.labels[index],
                        "kind": exc.kind,
                        "message": exc.message,
                    }
                    self._publish(self._settle_event(index, 0.0))
                else:
                    self.records[index] = record
                    self.origins[index] = origin
                    self.statuses[index] = (
                        "cached" if origin == "cached" else "done"
                    )
                    self.manifest.mark_done(index)
                    self._publish(self._settle_event(index, elapsed))

        try:
            await asyncio.gather(
                *(one(i, request) for i, request in enumerate(self.requests))
            )
        finally:
            self.manifest.flush()
            self.finished_at = time.time()
            self._publish(
                {
                    "event": "end",
                    "id": self.sweep_id,
                    "counts": self.counts(),
                    "elapsed_s": self.finished_at - self.created,
                }
            )

    def _settle_event(self, index: int, elapsed: float) -> dict[str, Any]:
        event: dict[str, Any] = {
            "event": "settle",
            "id": self.sweep_id,
            "index": index,
            "label": self.labels[index],
            "status": self.statuses[index],
            "origin": self.origins[index],
            "elapsed": elapsed,
            "settled": self.settled,
            "total": self.total,
        }
        if index in self.errors:
            event["error"] = self.errors[index]
        return event
