"""Design-choice ablations (DESIGN.md §5, "additional ablations").

* distribution gap — the measurable price of the discovery problem;
* centralized-solver choice inside ``ASeparator`` terminations;
* online-extension competitive ratios vs the [BW20] benchmark constant.

The gap and solver ablations run their simulations through the sweep
harness (:func:`repro.experiments.run_requests`); pass ``workers`` to the
underlying functions to parallelise larger configs.
"""

from repro.centralized.online import BW20_COMPETITIVE_RATIO
from repro.experiments import print_table
from repro.experiments.ablations import (
    distribution_gap,
    online_competitiveness,
    solver_choice,
)


def test_bench_distribution_gap(once):
    rows = once(distribution_gap)
    print_table(rows, "\nABLATION: clairvoyant vs distributed makespan")
    for row in rows:
        assert row["woke_all"]
        # Discovery costs: the distributed run is strictly slower, but by
        # a bounded factor at these scales (the ell^2 log term).
        assert row["gap"] > 1.0
        assert row["gap"] < 200.0


def test_bench_solver_choice(once):
    rows = once(solver_choice)
    print_table(rows, "\nABLATION: ASeparator termination solver (Lemma 2 role)")
    for row in rows:
        # Both solvers complete; greedy usually wins on constants, but
        # must stay in the same ballpark (it has no worst-case guarantee).
        assert 0.5 <= row["greedy/quadtree"] <= 1.5


def test_bench_online_ratio(once):
    rows = once(online_competitiveness)
    print_table(rows, "\nEXTENSION: online Freeze Tag competitive ratios")
    print(f"[BW20] optimal online ratio: {BW20_COMPETITIVE_RATIO:.3f}")
    for row in rows:
        assert row["mean_ratio"] >= 1.0
        assert row["max_ratio"] <= 6.0
