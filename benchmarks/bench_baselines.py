"""Centralized baselines through the harness (registry adapters).

The Table 1 story is distributed-vs-clairvoyant: every ``kind ==
"centralized"`` registration runs through the schedule→program adapter,
so its makespan and energy are *executed* by the same engine as the
distributed algorithms.  This bench keeps the perf trajectory covering
those adapters:

* the full baseline head-to-head (greedy / quadtree / chain /
  online_greedy vs an ``AGrid`` reference) on identical seeded
  instances, enumerated from the registry — a new baseline registration
  joins the comparison with no benchmark edit;
* the exact branch-and-bound optimum on a micro-instance, certifying
  the heuristic baselines' approximation ratios end-to-end.
"""

from repro.core.registry import algorithm_names, get_algorithm
from repro.core.runner import RunRequest
from repro.experiments import (
    centralized_baseline_sweep,
    print_table,
    run_requests,
)


def test_bench_baseline_head_to_head(once):
    rows = once(centralized_baseline_sweep, n=24, rho=6.0, seeds=(0, 1))
    print_table(rows, "\nBASELINES: engine-executed centralized vs AGrid")
    assert all(r["all_woke"] for r in rows)
    by_name = {r["algorithm"]: r for r in rows}
    # Every registered centralized baseline the instance admits is here
    # (`exact` sits out: n=24 exceeds its registered max_n).
    for name in algorithm_names(kind="centralized"):
        spec = get_algorithm(name)
        assert (name in by_name) == (spec.max_n is None or spec.max_n >= 24)
    # Clairvoyance pays: the schedule solvers with a makespan guarantee
    # beat the distributed reference, which must pay for discovery.
    assert by_name["quadtree"]["vs_reference"] < 1.0
    assert by_name["greedy"]["vs_reference"] < 1.0
    # The no-branching chain is the straw man — worst of the baselines.
    chain = by_name["chain"]["mean_makespan"]
    assert chain >= max(
        by_name[n]["mean_makespan"] for n in ("greedy", "quadtree")
    )


def test_bench_exact_certifies_heuristics(once):
    """On a micro-instance the exact adapter bounds the heuristics."""
    requests = [
        RunRequest(
            algorithm=name,
            family="uniform_disk",
            family_kwargs={"n": 8, "rho": 5.0, "seed": 3},
        )
        for name in ("exact", "greedy", "quadtree")
    ]

    exact, greedy, quadtree = once(run_requests, requests)
    rows = [
        {
            "algorithm": r["algorithm"],
            "makespan": r["makespan"],
            "vs_exact": r["makespan"] / exact["makespan"],
            "woke_all": r["woke_all"],
        }
        for r in (exact, greedy, quadtree)
    ]
    print_table(rows, "\nBASELINES: heuristics vs the exact optimum (n=8)")
    assert all(r["woke_all"] for r in rows)
    # The optimum is a true lower bound, executed through the engine.
    assert exact["makespan"] <= greedy["makespan"] + 1e-9
    assert exact["makespan"] <= quadtree["makespan"] + 1e-9
    # And the heuristics stay within their observed approximation range.
    assert greedy["makespan"] <= 3.0 * exact["makespan"]
    assert quadtree["makespan"] <= 4.0 * exact["makespan"]
