"""Delta-disk graphs over planar point sets.

The *delta-disk graph* of a point set connects two points whenever their
Euclidean distance is at most ``delta``; edges are weighted by that
distance.  The paper's three instance parameters are all read off disk
graphs (Section 1.2):

* ``ell_star`` — least ``delta`` making the graph on ``P ∪ {s}`` connected;
* ``xi_ell``  — eccentricity of the source in the ``ell``-disk graph
  (the minimum weighted depth of a rooted spanning tree equals the
  shortest-path eccentricity, since the shortest-path tree minimizes every
  root distance simultaneously);
* ``DFSampling`` runs a DFS over the ``2*ell``-disk graph.

Adjacency is produced lazily through a :class:`repro.geometry.gridhash`
index so that construction is near-linear for bounded-density sets instead
of quadratic.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Sequence

from .gridhash import GridHash
from .points import EPS, Point, distance

__all__ = ["DiskGraph", "connected_components", "bottleneck_connectivity"]


class DiskGraph:
    """Disk graph over an indexed point set with lazy neighbor queries."""

    def __init__(self, points: Sequence[Point], delta: float) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.points = list(points)
        self.delta = float(delta)
        self._index = GridHash(cell_size=delta)
        for i, p in enumerate(self.points):
            self._index.insert(i, p)

    def __len__(self) -> int:
        return len(self.points)

    def neighbors(self, i: int) -> list[int]:
        """Indices adjacent to vertex ``i`` (excluding ``i`` itself)."""
        center = self.points[i]
        return [
            j
            for j, _ in self._index.query_ball(center, self.delta)
            if j != i
        ]

    def neighbors_of_point(self, p: Point) -> list[int]:
        """Vertices within ``delta`` of an arbitrary probe point."""
        return [j for j, _ in self._index.query_ball(p, self.delta)]

    def edges(self) -> Iterable[tuple[int, int, float]]:
        """All edges ``(i, j, weight)`` with ``i < j``."""
        for i in range(len(self.points)):
            for j in self.neighbors(i):
                if i < j:
                    yield i, j, distance(self.points[i], self.points[j])

    def is_connected(self) -> bool:
        if len(self.points) <= 1:
            return True
        return len(self.component_of(0)) == len(self.points)

    def component_of(self, start: int) -> set[int]:
        """Vertex set of the connected component containing ``start``."""
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def shortest_path_lengths(self, source: int) -> list[float]:
        """Dijkstra distances from ``source`` (``inf`` for unreachable)."""
        dist = [math.inf] * len(self.points)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + EPS:
                continue
            pu = self.points[u]
            for v in self.neighbors(u):
                nd = d + distance(pu, self.points[v])
                if nd < dist[v] - EPS:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def shortest_path_tree(self, source: int) -> list[int | None]:
        """Parent array of a shortest-path tree rooted at ``source``.

        ``parent[source] is None``; unreachable vertices also get ``None``
        (distinguish them through :meth:`shortest_path_lengths`).
        """
        dist = [math.inf] * len(self.points)
        parent: list[int | None] = [None] * len(self.points)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + EPS:
                continue
            pu = self.points[u]
            for v in self.neighbors(u):
                nd = d + distance(pu, self.points[v])
                if nd < dist[v] - EPS:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return parent

    def hop_distances(self, source: int) -> list[int]:
        """BFS hop counts from ``source`` (``-1`` for unreachable)."""
        hops = [-1] * len(self.points)
        hops[source] = 0
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self.neighbors(u):
                    if hops[v] < 0:
                        hops[v] = hops[u] + 1
                        nxt.append(v)
            frontier = nxt
        return hops


def connected_components(points: Sequence[Point], delta: float) -> list[set[int]]:
    """Connected components of the ``delta``-disk graph."""
    graph = DiskGraph(points, delta)
    remaining = set(range(len(points)))
    components: list[set[int]] = []
    while remaining:
        start = next(iter(remaining))
        comp = graph.component_of(start)
        components.append(comp)
        remaining -= comp
    return components


def bottleneck_connectivity(points: Sequence[Point]) -> float:
    """Least ``delta`` making the ``delta``-disk graph connected.

    Equals the largest edge of a Euclidean minimum spanning tree (the
    bottleneck shortest-path property of MSTs).  Implemented as a dense
    Prim scan vectorised with numpy — ``O(n^2)`` time, ``O(n)`` memory —
    which is robust for the instance sizes used in tests and benchmarks
    (up to a few tens of thousands of points).

    Returns ``0.0`` for fewer than two points.
    """
    import numpy as np

    n = len(points)
    if n <= 1:
        return 0.0
    xs = np.asarray([p[0] for p in points], dtype=float)
    ys = np.asarray([p[1] for p in points], dtype=float)
    in_tree = np.zeros(n, dtype=bool)
    best = np.full(n, np.inf)
    best[0] = 0.0
    bottleneck = 0.0
    for _ in range(n):
        masked = np.where(in_tree, np.inf, best)
        u = int(np.argmin(masked))
        bottleneck = max(bottleneck, float(masked[u]))
        in_tree[u] = True
        d = np.hypot(xs - xs[u], ys - ys[u])
        np.minimum(best, d, out=best)
    return bottleneck
