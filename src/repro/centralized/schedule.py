"""Wake-up schedules — the solution objects of centralized Freeze Tag.

The paper describes solutions as *wake-up trees*: rooted trees over robot
positions where the root (the initially-awake robot) has one child and
every other node at most two, the makespan being the weighted depth
(Section 1.1).  An equivalent — and operationally friendlier — encoding is
the **ordered wake forest**: every waker carries an ordered list of robots
it personally wakes, visiting them in sequence.  The two encodings are
inter-convertible (first-child = head of the woken robot's list,
second-child = tail of the waker's list, exactly the split Algorithm 1
performs), and the ordered form is what the distributed propagation code
executes directly.

Robots are identified by their index in ``positions``; the virtual ``ROOT``
(-1) stands for the initially-awake robot at ``root``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..geometry import Point, distance

__all__ = ["ROOT", "WakeupSchedule", "ScheduleEvaluation"]

#: Virtual index of the initially-awake robot.
ROOT = -1


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Computed timing of a schedule."""

    wake_times: tuple[float, ...]      # per target index
    makespan: float                    # max wake time (0 when no targets)
    travel: dict[int, float]           # distance walked per waker (ROOT incl.)
    depth: int                         # max number of wake hops root->leaf

    @property
    def total_travel(self) -> float:
        return sum(self.travel.values())

    @property
    def max_travel(self) -> float:
        return max(self.travel.values(), default=0.0)


@dataclass(frozen=True)
class WakeupSchedule:
    """An ordered wake forest over ``positions`` rooted at ``root``.

    ``orders[w]`` is the ordered tuple of target indices robot ``w`` wakes
    (``w`` is ``ROOT`` or a target index).  A valid schedule wakes every
    index exactly once, and every waker other than ``ROOT`` is itself woken
    somewhere (the structure is a tree on ``{ROOT} ∪ indices``).
    """

    root: Point
    positions: tuple[Point, ...]
    orders: Mapping[int, tuple[int, ...]]

    @staticmethod
    def build(
        root: Point,
        positions: Sequence[Point],
        orders: Mapping[int, Sequence[int]],
    ) -> "WakeupSchedule":
        frozen = {
            waker: tuple(targets)
            for waker, targets in orders.items()
            if targets
        }
        return WakeupSchedule(root, tuple(positions), frozen)

    # -- structure -----------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.positions)

    def waker_of(self) -> dict[int, int]:
        """Map target index -> waker index (``ROOT`` for the first)."""
        parent: dict[int, int] = {}
        for waker, targets in self.orders.items():
            for t in targets:
                parent[t] = waker
        return parent

    def validate(self) -> None:
        """Raise ``ValueError`` when the schedule is not a wake tree."""
        seen: set[int] = set()
        for waker, targets in self.orders.items():
            if waker != ROOT and not (0 <= waker < self.n):
                raise ValueError(f"unknown waker {waker}")
            for t in targets:
                if not (0 <= t < self.n):
                    raise ValueError(f"unknown target {t}")
                if t in seen:
                    raise ValueError(f"target {t} woken twice")
                seen.add(t)
        if len(seen) != self.n:
            missing = set(range(self.n)) - seen
            raise ValueError(f"targets never woken: {sorted(missing)[:10]}")
        # Reachability: walking wake order from ROOT must reach everyone
        # (a waker must wake its targets only after being awake itself).
        reached: set[int] = set()
        frontier = list(self.orders.get(ROOT, ()))
        while frontier:
            t = frontier.pop()
            if t in reached:
                raise ValueError(f"cycle through target {t}")
            reached.add(t)
            frontier.extend(self.orders.get(t, ()))
        if len(reached) != self.n:
            raise ValueError(
                f"only {len(reached)}/{self.n} targets reachable from ROOT"
            )

    # -- timing ----------------------------------------------------------
    def evaluate(self) -> ScheduleEvaluation:
        """Wake times under unit speed; assumes :meth:`validate` passes."""
        wake_times = [0.0] * self.n
        travel: Dict[int, float] = {}
        depth = 0
        stack: list[tuple[int, Point, float, int]] = [(ROOT, self.root, 0.0, 0)]
        while stack:
            waker, pos, time, hops = stack.pop()
            walked = 0.0
            for t in self.orders.get(waker, ()):
                step = distance(pos, self.positions[t])
                walked += step
                time += step
                pos = self.positions[t]
                wake_times[t] = time
                depth = max(depth, hops + 1)
                stack.append((t, pos, time, hops + 1))
            if walked or waker == ROOT:
                travel[waker] = walked
        return ScheduleEvaluation(
            wake_times=tuple(wake_times),
            makespan=max(wake_times, default=0.0),
            travel=travel,
            depth=depth,
        )

    def makespan(self) -> float:
        return self.evaluate().makespan

    # -- conversions ---------------------------------------------------------
    def children_tree(self) -> dict[int, tuple[int, ...]]:
        """Binary wake-up tree as ``node -> (first_child[, second_child])``.

        First child of a waker's list-head is the head itself *seen from the
        woken robot's side*; formally: in the binary tree, node ``w`` has as
        children (a) the first target of its order list and (b) — for non
        root nodes — nothing extra, because the rest of the list is encoded
        as the first target's sibling chain.  The paper's "root has one
        child, others at most two" shape is recovered by the standard
        first-child / next-sibling transform.
        """
        tree: dict[int, list[int]] = {}
        for waker, targets in self.orders.items():
            if not targets:
                continue
            # w's binary children: its first target, and then each target's
            # binary second child is the *next* target in w's list.
            tree.setdefault(waker, []).append(targets[0])
            # The continuation (rest of w's list) stays with the waker in
            # Algorithm 1; in tree form it is the second child of the woken
            # node: after waking `a`, the waker's next stop `b` hangs off `a`.
            for a, b in zip(targets, targets[1:]):
                tree.setdefault(a, []).append(b)
        return {k: tuple(v) for k, v in tree.items()}

    def max_children(self) -> int:
        """Largest binary-tree out-degree (paper guarantees <= 2)."""
        tree = self.children_tree()
        return max((len(v) for v in tree.values()), default=0)
