"""Team knowledge — the variables robots carry and exchange.

Awake robots store what they have seen (initial positions of sleeping
robots) and what the algorithm has done (which robots were recruited and
where their homes are).  Knowledge moves strictly along the model's
channels: it is mutated by the owning process, copied into barrier payloads
and wake continuations, and merged at rendezvous ("share their variables",
Section 1.2).  Processes must never share a live ``TeamKnowledge`` object —
:meth:`TeamKnowledge.copy` at every fork/wake keeps the information flow
honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..geometry import Point

__all__ = ["TeamKnowledge"]


@dataclass
class TeamKnowledge:
    """What one team currently knows.

    ``sleeping``
        robot id -> initial position, for robots seen asleep and not (yet)
        known to be woken by *this* team's lineage.
    ``members``
        robot id -> home, for robots known to be awake: recruited by this
        lineage or reported through merges.
    """

    sleeping: Dict[int, Point] = field(default_factory=dict)
    members: Dict[int, Point] = field(default_factory=dict)

    # -- updates ----------------------------------------------------------
    def saw_sleeping(self, robot_id: int, position: Point) -> None:
        """Record a robot observed asleep at ``position``."""
        if robot_id not in self.members:
            self.sleeping[robot_id] = position

    def saw_awake_at_home(self, robot_id: int, position: Point) -> None:
        """Record a robot observed awake.

        The observed position of an awake robot is its *current* position;
        it is only a disk-graph node when the robot is parked at its home.
        Callers record it as a member home when the algorithm's parking
        discipline guarantees that (AWave participants return home).
        """
        self.sleeping.pop(robot_id, None)
        self.members[robot_id] = position

    def recruited(self, robot_id: int, home: Point) -> None:
        """Record that this team woke ``robot_id`` at its home."""
        self.sleeping.pop(robot_id, None)
        self.members[robot_id] = home

    # -- composition -------------------------------------------------------
    def copy(self) -> "TeamKnowledge":
        return TeamKnowledge(sleeping=dict(self.sleeping), members=dict(self.members))

    def merge(self, other: "TeamKnowledge") -> None:
        """Union with another team's knowledge (membership wins)."""
        self.members.update(other.members)
        for rid, pos in other.sleeping.items():
            if rid not in self.members:
                self.sleeping.setdefault(rid, pos)
        # A robot reported as a member anywhere is not sleeping.
        for rid in list(self.sleeping):
            if rid in self.members:
                del self.sleeping[rid]

    # -- queries ---------------------------------------------------------
    def sleeping_in(self, owns) -> dict[int, Point]:
        """Known-sleeping robots whose home satisfies the ``owns`` predicate."""
        return {rid: p for rid, p in self.sleeping.items() if owns(p)}

    def members_in(self, owns) -> dict[int, Point]:
        """Known members whose home satisfies the ``owns`` predicate."""
        return {rid: p for rid, p in self.members.items() if owns(p)}

    def known_nodes(self) -> dict[int, Point]:
        """All known initial positions (sleeping and member homes)."""
        nodes = dict(self.sleeping)
        nodes.update(self.members)
        return nodes
