"""Distributed realization of a wake-up tree (Algorithm 1, Section 6.2).

A centralized solver hands us a :class:`~repro.centralized.WakeupSchedule`
over *known* sleeping positions; this module executes it in the simulator.
Following Algorithm 1's split semantics, each waker carries an ordered list
of targets: it moves to the first target, wakes it and hands over that
target's own list (the "left-hand sub-tree"), then continues with the rest
of its list (the "right-hand sub-tree").

Every woken robot can be given an ``after`` continuation — the program it
runs once its subtree is exhausted.  ``AGrid``/``AWave`` use it to enroll
freshly-woken robots into the next wave round; plain ``ASeparator``
terminations leave it ``None`` (robot stops, parked in place).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Mapping, Sequence

from ..centralized import ROOT, WakeupSchedule
from ..geometry import Point
from ..sim import SOURCE_ID, Move, Result, Wake
from ..sim.actions import Action, Program
from ..sim.engine import ProcessView

__all__ = [
    "WakePlan",
    "plan_from_schedule",
    "execute_wake_plan",
    "propagation_program",
    "schedule_program",
]

#: Ordered wake lists keyed by simulator robot id; ``targets[rid]`` is the
#: sequence of robot ids that ``rid`` personally wakes, in order.
WakePlan = Dict[int, tuple[int, ...]]

#: Optional per-robot continuation factory: given the woken robot's id,
#: return the program it runs after finishing its subtree (or ``None``).
AfterFactory = Callable[[int], Program | None]


def plan_from_schedule(
    schedule: WakeupSchedule,
    target_ids: Sequence[int],
    root_id: int,
) -> tuple[WakePlan, dict[int, Point]]:
    """Translate a schedule over indices into robot-id terms.

    ``target_ids[i]`` is the simulator id of the robot at
    ``schedule.positions[i]``; ``root_id`` is the robot executing the
    ``ROOT`` list.  Returns the plan and the position map for all targets.
    """
    def rid(index: int) -> int:
        return root_id if index == ROOT else target_ids[index]

    plan: WakePlan = {}
    for waker, targets in schedule.orders.items():
        plan[rid(waker)] = tuple(target_ids[t] for t in targets)
    positions = {
        target_ids[i]: schedule.positions[i] for i in range(len(target_ids))
    }
    return plan, positions


def execute_wake_plan(
    proc: ProcessView,
    plan: WakePlan,
    positions: Mapping[int, Point],
    my_id: int,
    after: AfterFactory | None = None,
) -> Generator[Action, Result, None]:
    """Run robot ``my_id``'s share of ``plan`` inside an existing process.

    The process moves to each of its targets in order; each woken robot is
    spun off as a new process running its own share (then its ``after``
    continuation).  The caller's generator resumes control when the list is
    exhausted — the caller decides what the waker does next.

    The executing process should contain only the waker robot: the whole
    process moves, so teammates would be dragged along (callers park
    teammates first — see ``ASeparator``'s termination phase).

    Failure tolerance: a robot that crashes the instant it is woken
    (:class:`~repro.sim.WorldConfig` ``crash_on_wake``) never runs its
    propagation program — the engine signals this by returning ``None``
    instead of a process id, and the waker *inherits* the crashed robot's
    wake list, walking it before resuming its own.  Every robot of the
    *plan* is therefore woken under any crash pattern, at the price of a
    longer (sequential) tour — exactly the makespan degradation the
    robustness sweeps measure.  Note the guarantee is per plan: for a
    centralized schedule (one clairvoyant wake forest) that is full
    completeness, while the round-based algorithms wake each explored
    cell completely but can still lose *coverage* if an entire cell
    cohort crashes and no survivor carries the wave onward (the same
    wave-dies semantics ``AWave`` has under team starvation).
    """
    for target in plan.get(my_id, ()):
        yield Move(positions[target])
        outcome = yield Wake(
            target, program=propagation_program(plan, positions, target, after)
        )
        if outcome.value is None:
            yield from execute_wake_plan(proc, plan, positions, target, after)


def propagation_program(
    plan: WakePlan,
    positions: Mapping[int, Point],
    robot_id: int,
    after: AfterFactory | None = None,
) -> Program:
    """Program for a robot woken mid-tree: finish the subtree, then
    ``after(robot_id)`` (if any), then stop."""

    def program(proc: ProcessView) -> Generator[Action, Result, None]:
        yield from execute_wake_plan(proc, plan, positions, robot_id, after)
        continuation = after(robot_id) if after is not None else None
        if continuation is not None:
            yield from continuation(proc)

    return program


def schedule_program(schedule: WakeupSchedule) -> Program:
    """Schedule→program adapter: execute a centralized schedule end-to-end.

    ``schedule`` must be indexed over a world's sleeping positions in
    generation order (simulator ids ``1..n``, the :class:`~repro.sim.World`
    convention), rooted at the source.  The returned program runs as the
    source process and realizes the whole wake forest through the engine,
    so a clairvoyant baseline produces the same :class:`SimulationResult`
    record — makespan, per-robot energy, trace — as a distributed run.
    This is what makes centralized-vs-distributed sweeps head-to-head
    rather than apples-to-oranges analytic makespans.
    """
    schedule.validate()
    target_ids = list(range(1, len(schedule.positions) + 1))
    plan, positions = plan_from_schedule(schedule, target_ids, SOURCE_ID)

    def program(proc: ProcessView) -> Generator[Action, Result, None]:
        yield from execute_wake_plan(proc, plan, positions, SOURCE_ID)

    return program
