"""Unit tests for the stdlib HTTP layer: parsing, routing, responses."""

import asyncio
import json

import pytest

from repro.service.httpd import (
    HttpError,
    Request,
    Response,
    Router,
    _read_request,
    json_response,
    sse_event,
    text_response,
)


def parse(raw: bytes) -> Request | None:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await _read_request(reader)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query_and_headers(self):
        request = parse(
            b"GET /sweeps/abc?format=csv&partial=1 HTTP/1.1\r\n"
            b"Host: localhost\r\nAccept: */*\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/sweeps/abc"
        assert request.query == {"format": "csv", "partial": "1"}
        assert request.headers["host"] == "localhost"  # lower-cased
        assert request.body == b""

    def test_post_body_by_content_length(self):
        body = json.dumps({"name": "x"}).encode()
        request = parse(
            b"POST /sweeps HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.json() == {"name": "x"}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n")
        assert exc.value.status == 400

    def test_json_of_empty_body_is_400(self):
        request = parse(b"POST /sweeps HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400

    def test_json_of_invalid_body_is_400(self):
        request = parse(
            b"POST /sweeps HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400

    def test_flag_semantics(self):
        request = Request(
            method="GET", path="/", headers={}, body=b"",
            query={"partial": "1", "off": "false", "bare": ""},
        )
        assert request.flag("partial") is True
        assert request.flag("bare") is True  # bare ?name counts as set
        assert request.flag("off") is False
        assert request.flag("absent") is False


class TestRouter:
    def _router(self):
        async def handler(request, **caps):  # pragma: no cover - not run
            return Response()

        router = Router()
        router.add("GET", "/sweeps", handler)
        router.add("POST", "/sweeps", handler)
        router.add("GET", "/sweeps/{sweep_id}/records", handler)
        return router, handler

    def test_literal_and_capture_match(self):
        router, handler = self._router()
        found, caps = router.match("GET", "/sweeps")
        assert found is handler and caps == {}
        found, caps = router.match("GET", "/sweeps/abc123/records")
        assert caps == {"sweep_id": "abc123"}

    def test_unknown_path_is_404(self):
        router, _ = self._router()
        with pytest.raises(HttpError) as exc:
            router.match("GET", "/nope")
        assert exc.value.status == 404

    def test_known_path_wrong_method_is_405(self):
        router, _ = self._router()
        with pytest.raises(HttpError) as exc:
            router.match("DELETE", "/sweeps")
        assert exc.value.status == 405

    def test_capture_does_not_cross_segments(self):
        router, _ = self._router()
        with pytest.raises(HttpError) as exc:
            router.match("GET", "/sweeps/a/b/records")
        assert exc.value.status == 404


class TestResponses:
    def test_json_response_is_canonical(self):
        response = json_response({"b": 1, "a": 2})
        assert response.body == b'{"a":2,"b":1}\n'
        assert response.content_type == "application/json"

    def test_text_response_content_type(self):
        response = text_response("a,b\r\n1,2\r\n", content_type="text/csv")
        assert response.body == b"a,b\r\n1,2\r\n"
        assert response.content_type == "text/csv"

    def test_sse_event_frame(self):
        frame = sse_event("settle", {"index": 0})
        assert frame == b'event: settle\ndata: {"index":0}\n\n'
