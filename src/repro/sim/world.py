"""The world: robot registry, visibility index, wake bookkeeping.

The world is engine-internal ground truth.  Distributed programs never read
it directly — they learn about other robots exclusively through ``Look``
snapshots and co-located exchanges, as the model prescribes.  Tests and
metrics, on the other hand, inspect the world freely (it plays the role of
the omniscient observer used in the paper's proofs).

Sleeping robots never move, so they are indexed once in a unit-cell
:class:`~repro.geometry.gridhash.GridHash` keyed for the distance-1
snapshot queries; a robot is removed from the index the moment it wakes.
Awake robots are tracked by the engine's processes (their positions change
with their process), plus a registry of *idle* awake robots whose process
has finished.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..geometry import EPS, GridHash, Point
from .robot import SOURCE_ID, Robot

__all__ = ["World", "VISIBILITY_RADIUS", "CO_LOCATION_TOL"]

#: The paper's visibility radius: awake robots see robots "in its
#: distance-1 vicinity".
VISIBILITY_RADIUS = 1.0

#: Tolerance for co-location checks (wake, absorb, barrier exchange).
#: Positions are produced as exact move targets, so genuine rendezvous are
#: exact; the slack only forgives accumulated float error in computed
#: meeting points.
CO_LOCATION_TOL = 1e-6


class World:
    """Ground-truth state of a simulation."""

    def __init__(
        self,
        source: Point,
        positions: Sequence[Point],
        budget: float = math.inf,
        source_budget: float | None = None,
    ) -> None:
        """Create a world with an awake source and ``len(positions)`` sleepers.

        ``budget`` applies to every robot (the paper's uniform energy budget
        ``B``); ``source_budget`` optionally overrides it for the source.
        """
        self.robots: Dict[int, Robot] = {}
        self.robots[SOURCE_ID] = Robot(
            robot_id=SOURCE_ID,
            home=source,
            position=source,
            awake=True,
            wake_time=0.0,
            budget=budget if source_budget is None else source_budget,
        )
        self._sleeping_index = GridHash(cell_size=VISIBILITY_RADIUS)
        for i, p in enumerate(positions, start=1):
            self.robots[i] = Robot(robot_id=i, home=p, position=p, budget=budget)
            self._sleeping_index.insert(i, p)
        self.last_wake_time = 0.0
        self._wake_order: list[int] = [SOURCE_ID]

    # -- queries -------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of initially-asleep robots (the paper's ``n``)."""
        return len(self.robots) - 1

    @property
    def source(self) -> Robot:
        return self.robots[SOURCE_ID]

    def sleeping_within(self, center: Point, radius: float) -> list[Robot]:
        """Sleeping robots in the closed ball ``B(center, radius)``."""
        return [
            self.robots[rid]
            for rid, _ in self._sleeping_index.query_ball(center, radius, tol=EPS)
        ]

    def sleeping_count(self) -> int:
        return len(self._sleeping_index)

    def all_awake(self) -> bool:
        return len(self._sleeping_index) == 0

    def awake_robots(self) -> list[Robot]:
        return [r for r in self.robots.values() if r.awake]

    def wake_order(self) -> list[int]:
        """Robot ids in wake order (source first)."""
        return list(self._wake_order)

    def wake_times(self) -> dict[int, float]:
        """Wake time per awake robot id."""
        return {
            r.robot_id: r.wake_time
            for r in self.robots.values()
            if r.awake and r.wake_time is not None
        }

    def max_odometer(self) -> float:
        """Largest per-robot travelled distance (energy usage)."""
        return max(r.odometer for r in self.robots.values())

    def total_odometer(self) -> float:
        """Total distance travelled by the swarm."""
        return sum(r.odometer for r in self.robots.values())

    # -- mutation (engine only) ------------------------------------------
    def mark_awake(self, robot_id: int, time: float, waker_id: int | None) -> Robot:
        """Flip a sleeping robot to awake (engine-internal)."""
        robot = self.robots[robot_id]
        if robot.awake:
            raise ValueError(f"robot {robot_id} is already awake")
        robot.awake = True
        robot.wake_time = time
        robot.waker_id = waker_id
        self._sleeping_index.remove(robot_id)
        self.last_wake_time = max(self.last_wake_time, time)
        self._wake_order.append(robot_id)
        return robot

    # -- convenience ---------------------------------------------------------
    def homes(self) -> list[Point]:
        """Initial positions of the initially-asleep robots, in id order."""
        return [self.robots[i].home for i in range(1, len(self.robots))]

    def describe(self) -> str:
        awake = sum(1 for r in self.robots.values() if r.awake)
        return (
            f"World(n={self.n}, awake={awake}/{len(self.robots)}, "
            f"last_wake={self.last_wake_time:.3f})"
        )
