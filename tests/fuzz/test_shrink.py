"""Shrinker: convergence on a planted violation, determinism, guards."""

import pytest

from repro.fuzz import FuzzConfig, check_config, shrink
from repro.geometry.frontier import FAULT_REACH_ENV


def failing_config():
    return FuzzConfig("awave", "uniform_disk", {"n": 8, "rho": 4.0, "seed": 3})


@pytest.fixture
def planted_fault(monkeypatch):
    monkeypatch.setenv(FAULT_REACH_ENV, "0.5")


class TestConvergence:
    def test_minimizes_the_planted_violation_to_a_tiny_seed(self, planted_fault):
        result = shrink(failing_config())
        kwargs = result.config.scenario_kwargs
        assert kwargs["n"] <= 12  # the ISSUE's acceptance ceiling
        assert kwargs["seed"] == 0
        assert result.accepted >= 1
        assert result.attempts <= 200

    def test_minimized_config_still_fails_the_same_invariant(self, planted_fault):
        original = failing_config()
        targets = {v.invariant for v in check_config(original).violations}
        result = shrink(original)
        assert any(v.invariant in targets for v in result.outcome.violations)

    def test_deterministic(self, planted_fault):
        a = shrink(failing_config())
        b = shrink(failing_config())
        assert a.config.config_id() == b.config.config_id()
        assert (a.attempts, a.accepted) == (b.attempts, b.accepted)

    def test_drops_irrelevant_knobs(self, planted_fault):
        noisy = FuzzConfig(
            "awave",
            "uniform_disk",
            {"n": 8, "rho": 4.0, "seed": 3},
            world_params={"slow_speed": 0.9, "slow_fraction": 0.0},
        )
        result = shrink(noisy)
        assert result.config.world_params == {}

    def test_result_dict_names_both_endpoints(self, planted_fault):
        original = failing_config()
        payload = shrink(original).as_dict()
        assert payload["original_id"] == original.config_id()
        assert payload["config_id"] != payload["original_id"]
        assert payload["violations"]


class TestGuards:
    def test_passing_config_is_rejected(self):
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink(failing_config())  # no fault planted: the config is clean

    def test_attempt_budget_is_respected(self, planted_fault):
        result = shrink(failing_config(), max_attempts=2)
        assert result.attempts <= 2
