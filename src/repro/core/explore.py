"""The ``Explore`` procedure (Lemma 1, Section 6.1).

A robot with distance-1 visibility explores a rectangle by zig-zagging rows
spaced ``sqrt(2)`` apart, taking a snapshot every ``sqrt(2)`` of travel: a
radius-1 disk contains the axis-parallel square of width ``sqrt(2)``
centered at the snapshot point, so the snapshot lattice covers the strip.
A team of ``k`` robots splits the rectangle into ``k`` horizontal strips
(Figure 4b), explores them in parallel, and regroups at a meeting point to
share findings — time ``O(w*h/k + w + h)``.

Implemented as engine program fragments (``yield from``-able generators):

* :func:`exploration_stops` — the snapshot lattice for one rectangle;
* :func:`explore_rect` — single-robot (or whole-process) exploration;
* :func:`explore_rect_team` — the fork / explore / barrier / absorb cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator

from ..geometry import Point, Rect, distance
from ..sim import Absorb, Barrier, Fork, Look, Move, Result, Sweep, Wait
from ..sim.actions import Action
from ..sim.engine import ProcessView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..geometry import FrontierIndex

__all__ = [
    "SQRT2",
    "ExplorationReport",
    "exploration_stops",
    "exploration_time_bound",
    "explore_rect",
    "explore_rect_team",
]

SQRT2 = math.sqrt(2.0)


@dataclass
class ExplorationReport:
    """Robots observed while exploring: id -> observed position."""

    sleeping: Dict[int, Point] = field(default_factory=dict)
    awake: Dict[int, Point] = field(default_factory=dict)
    snapshots: int = 0

    def merge(self, other: "ExplorationReport") -> None:
        self.sleeping.update(other.sleeping)
        # A robot seen awake anywhere overrides a sleeping sighting: wakes
        # are irreversible, so the awake observation is the newer fact.
        self.awake.update(other.awake)
        for rid in other.awake:
            self.sleeping.pop(rid, None)
        self.snapshots += other.snapshots


def _axis_stops(lo: float, hi: float) -> list[float]:
    """Snapshot coordinates covering the closed interval ``[lo, hi]``.

    Stops are spaced at most ``sqrt(2)`` apart with the first/last at most
    ``sqrt(2)/2`` from the ends, so every coordinate of the interval is
    within ``sqrt(2)/2`` of a stop.

    Memoized: a team exploration splits a rectangle into one strip per
    robot, and every strip shares the parent's x-interval — at cohort
    sizes that is thousands of identical lattices per rectangle.  Callers
    never mutate the returned list.
    """
    cached = _AXIS_STOPS_MEMO.get((lo, hi))
    if cached is not None:
        return cached
    span = hi - lo
    if span <= SQRT2:
        stops = [(lo + hi) / 2.0]
    else:
        count = math.ceil(span / SQRT2)
        # ``count`` intervals of width span/count <= sqrt(2); stops at
        # interval midpoints.
        step = span / count
        stops = [lo + (i + 0.5) * step for i in range(count)]
    if len(_AXIS_STOPS_MEMO) >= _AXIS_STOPS_MEMO_MAX:
        _AXIS_STOPS_MEMO.clear()
    _AXIS_STOPS_MEMO[(lo, hi)] = stops
    return stops


_AXIS_STOPS_MEMO: Dict[tuple, list] = {}
_AXIS_STOPS_MEMO_MAX = 4096


def exploration_stops(rect: Rect) -> list[Point]:
    """Boustrophedon snapshot lattice covering ``rect``.

    Every point of ``rect`` lies within Chebyshev distance ``sqrt(2)/2`` of
    some stop, hence within Euclidean distance 1 — the Lemma 1 coverage
    invariant.  Rows alternate direction so consecutive stops are adjacent.
    """
    ys = _axis_stops(rect.ymin, rect.ymax)
    xs = _axis_stops(rect.xmin, rect.xmax)
    xs_reversed = xs[::-1]
    # Cohort explorations materialize millions of stops (one thin strip
    # per robot); skip the generated NamedTuple __new__ frame and build
    # the Points straight through tuple.__new__ — same objects, ~2x less
    # constructor overhead on the hottest allocation in a batched run.
    tuple_new = tuple.__new__
    point = Point
    stops: list[Point] = []
    for j, y in enumerate(ys):
        row = xs if j % 2 == 0 else xs_reversed
        stops += [tuple_new(point, (x, y)) for x in row]
    return stops


def exploration_time_bound(width: float, height: float, k: int = 1) -> float:
    """Safe upper bound on the travel of :func:`explore_rect` over a
    ``width x height`` rectangle split across ``k`` robots.

    Accounts for the strip path (``<= w*h/(k*sqrt(2)) + w + h`` per strip
    plus slack), the entry move and the exit move.  Used by the fixed
    window arithmetic of ``AGrid``/``AWave``; the engine asserts the bound
    at runtime, so a violation fails loudly in tests.
    """
    w, h = width, height
    strip_h = h / k
    path = (w + SQRT2) * (strip_h / SQRT2 + 1.0) + strip_h
    entry_exit = 2.0 * (w + h) + 2.0 * SQRT2
    return path + entry_exit


def explore_rect(
    proc: ProcessView,
    rect: Rect,
    arrive_at: Point | None = None,
    frontier: "FrontierIndex | None" = None,
) -> Generator[Action, Result, ExplorationReport]:
    """Explore ``rect`` with the whole process moving as one unit.

    Returns an :class:`ExplorationReport` of everything seen.  When
    ``arrive_at`` is given, the process finishes there.

    With a :class:`~repro.geometry.FrontierIndex` the walk is *batched*:
    stops whose snapshot provably contains no sleeping robot (no initial
    position within the closed visibility reach — sleeping robots never
    move, so the oracle is static) are swept through in single engine
    events, and only *hot* stops take real snapshots.  Travel path,
    per-segment energy accounting and arrival times are identical to the
    per-stop walk; what changes is the number of queue events and
    sleeper-free snapshots.  A skipped stop may miss an *awake transient*
    (a robot traveling far from every initial position); such sightings
    only ever cancel a same-report sleeping entry, and the differential
    suite pins that the omission never reaches a wake-time or energy
    observable on any tested instance.  Near an energy budget the batched
    path falls back to per-stop moves so an overrun aborts at exactly the
    legacy point.
    """
    report = ExplorationReport()
    stops = exploration_stops(rect)
    if frontier is not None and _sweep_admissible(proc, stops, arrive_at):
        yield from _explore_stops_batched(proc, stops, arrive_at, frontier, report)
        return report
    for stop in stops:
        yield Move(stop)
        snap = (yield Look()).value
        report.snapshots += 1
        for view in snap.robots:
            if view.awake:
                report.awake[view.robot_id] = view.position
                report.sleeping.pop(view.robot_id, None)
            elif view.robot_id not in report.awake:
                report.sleeping[view.robot_id] = view.position
    if arrive_at is not None:
        yield Move(arrive_at)
    return report


def _sweep_admissible(
    proc: ProcessView, stops: list[Point], arrive_at: Point | None
) -> bool:
    """Whether the whole walk clears every robot's remaining budget.

    Sweeping must never move the point (or simulation time) at which an
    :class:`~repro.sim.errors.EnergyBudgetExceeded` fires; when the walk
    could plausibly hit a budget, take the per-stop path whose abort
    semantics are the reference.
    """
    remaining = proc.min_remaining_budget
    if remaining == math.inf:
        return True
    total = 0.0
    prev = proc.position
    for stop in stops:
        total += distance(prev, stop)
        prev = stop
    if arrive_at is not None:
        total += distance(prev, arrive_at)
    return total < remaining - 1e-6


def _explore_stops_batched(
    proc: ProcessView,
    stops: list[Point],
    arrive_at: Point | None,
    frontier: "FrontierIndex",
    report: ExplorationReport,
) -> Generator[Action, Result, None]:
    """The frontier-batched walk: sweep cold runs, snapshot hot stops.

    ``report.snapshots`` counts planned lattice stops (the legacy payload
    semantics), not materialized looks.  Distance travelled is charged by
    the engine odometer (the single authoritative energy record, on the
    per-stop and batched paths alike) — reports carry no travel tally.
    """
    report.snapshots += len(stops)
    rect_hot = True
    if stops:
        xs = [s[0] for s in stops]
        ys = [s[1] for s in stops]
        rect_hot = frontier.rect_overlaps(min(xs), min(ys), max(xs), max(ys))
    if not rect_hot:
        # Entirely-cold rectangle: one sweep covers the whole lattice.
        pending = list(stops)
        if arrive_at is not None:
            pending.append(arrive_at)
        if pending:
            yield Sweep(pending)
        return
    hot = frontier.hot_stops(stops)
    pending = []
    for idx, stop in enumerate(stops):
        pending.append(stop)
        if not hot[idx]:
            continue
        yield Sweep(pending)
        pending = []
        snap = (yield Look()).value
        for view in snap.robots:
            if view.awake:
                report.awake[view.robot_id] = view.position
                report.sleeping.pop(view.robot_id, None)
            elif view.robot_id not in report.awake:
                report.sleeping[view.robot_id] = view.position
    if arrive_at is not None:
        pending.append(arrive_at)
    if pending:
        yield Sweep(pending)


def explore_rect_team(
    proc: ProcessView,
    rect: Rect,
    meet_at: Point,
    barrier_key: Any,
    frontier: "FrontierIndex | None" = None,
) -> Generator[Action, Result, ExplorationReport]:
    """Team exploration: split rows, explore in parallel, regroup, merge.

    The calling process keeps the bottom strip and forks one process per
    additional robot; everyone regroups at ``meet_at`` through a barrier
    keyed by ``barrier_key`` (which must be globally unique per call) and
    the caller absorbs its teammates back.  Returns the merged report.
    ``frontier`` enables the batched walk on every strip (see
    :func:`explore_rect`).
    """
    k = proc.team_size
    if k == 1:
        report = yield from explore_rect(
            proc, rect, arrive_at=meet_at, frontier=frontier
        )
        return report

    strips = rect.split_rows(k)
    my_ids = list(proc.robot_ids)
    parties = k

    def strip_program(strip: Rect):
        def program(child: ProcessView):
            child_report = yield from explore_rect(
                child, strip, arrive_at=meet_at, frontier=frontier
            )
            yield Barrier(barrier_key, parties, payload=child_report)
            # Child ends here; its robot becomes idle at meet_at and is
            # absorbed by the caller.

        return program

    assignments = [
        ((my_ids[i],), strip_program(strips[i])) for i in range(1, k)
    ]
    yield Fork(assignments)
    my_report = yield from explore_rect(
        proc, strips[0], arrive_at=meet_at, frontier=frontier
    )
    payloads = (yield Barrier(barrier_key, parties, payload=my_report)).value
    # Let the other parties' processes finish (they return right after the
    # barrier); the Wait(0) resume is ordered after their release events.
    yield Wait(0.0)
    yield Absorb(my_ids[1:])
    merged = ExplorationReport()
    for child_report in payloads:
        merged.merge(child_report)
    return merged
