"""Wake-time and discovery curves from simulation results.

The wake curve — fraction of the swarm awake as a function of time — is
the observable behind every makespan number; phases of ``ASeparator`` show
up as its plateaus, and the wave algorithms as staircases (one step per
wave round).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..sim import SimulationResult

__all__ = ["WakeCurve", "wake_curve", "wake_quantile", "round_staircase"]


@dataclass(frozen=True)
class WakeCurve:
    """Sorted wake times of the initially-asleep robots."""

    times: tuple[float, ...]
    n: int

    def fraction_awake_at(self, t: float) -> float:
        if self.n == 0:
            return 1.0
        count = sum(1 for wt in self.times if wt <= t + 1e-12)
        return count / self.n

    def quantile(self, q: float) -> float:
        """Time by which a fraction ``q`` of the swarm is awake."""
        if not self.times:
            return 0.0
        index = min(len(self.times) - 1, max(0, math.ceil(q * self.n) - 1))
        return self.times[index]

    def sample(self, points: int = 50) -> list[tuple[float, float]]:
        """Evenly-spaced (time, fraction) pairs for plotting/printing."""
        if not self.times:
            return [(0.0, 1.0)]
        horizon = self.times[-1]
        return [
            (t, self.fraction_awake_at(t))
            for t in (horizon * i / (points - 1) for i in range(points))
        ]


def wake_curve(result: SimulationResult) -> WakeCurve:
    """The run's wake curve over the initially-asleep robots."""
    times = sorted(t for rid, t in result.wake_times.items() if rid != 0)
    return WakeCurve(times=tuple(times), n=result.n)


def wake_quantile(result: SimulationResult, q: float) -> float:
    """Time by which a fraction ``q`` of the swarm is awake."""
    return wake_curve(result).quantile(q)


def round_staircase(result: SimulationResult, window: float) -> list[int]:
    """Robots woken per length-``window`` interval — the wave-round
    staircase of ``AGrid``/``AWave`` (one burst per round)."""
    curve = wake_curve(result)
    if not curve.times:
        return []
    buckets = int(curve.times[-1] // window) + 1
    counts = [0] * buckets
    for t in curve.times:
        counts[int(t // window)] += 1
    return counts
