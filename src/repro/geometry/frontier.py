"""Sparse wave frontier index: the static visibility oracle behind the
batched ``AWave`` execution model.

``AWave``'s event volume is dominated by exploration lattices swept through
*empty* space: at bench sizes >99% of the planned snapshot stops cannot see
any robot, because wave cells (width ``8*ell^2*log2(ell)``, at least 256)
dwarf the swarm's extent.  Sleeping robots never move — they sit at their
initial positions until woken — so "can this stop's snapshot contain a
sleeping robot?" is answerable *statically*, before the simulation runs,
from the instance alone.

:class:`FrontierIndex` packs the initial positions into per-cell contiguous
arrays (one ``lexsort``, :class:`~repro.geometry.frozen.FrozenGridHash`
style) and answers three families of queries:

* **hot stops** — which planned snapshot stops lie within the closed
  visibility reach of *any* initial position (:meth:`hot_stops` /
  :meth:`any_within`).  A cold stop's snapshot provably contains no
  *sleeping* robot (robots sleep at their initial positions until
  woken); the frontier-aware exploration replaces such Move+Look pairs
  with one batched :class:`~repro.sim.Sweep`.  The classification is
  conservative (``reach`` strictly exceeds the engine's look limit) and
  *static* — it never depends on execution state, so legacy and batched
  runs classify identically.  What a cold stop may legitimately miss is
  an *awake transient* — a robot traveling far from every initial
  position — whose sighting only ever cancels a same-report sleeping
  entry; the differential suite (exact wake-time and energy equality on
  randomized instances, including the exact-boundary ``l1_diamond``
  family) is the empirical guard that this omission never reaches an
  observable.
* **rect rejection** — whether a rectangle padded by the reach contains any
  initial position at all (:meth:`rect_overlaps`); an entirely-cold
  exploration skips per-stop classification outright.
* **wave cohorts** — vectorized bucketing of the swarm by wave cell
  (:meth:`cells` / :meth:`bucket` / :meth:`cohort`), float-op-identical
  to :meth:`repro.core.agrid.CellGrid.cell_of`, with decimation support
  for crash-on-wake worlds (crashed robots never join their cell's
  cohort).  ``cells`` feeds the wave's startup accounting; ``bucket`` /
  ``cohort`` are the property-tested oracle surface for cohort
  diagnostics (the in-run cohort election itself stays snapshot-driven —
  see ``_WavePlan.gather_team`` — so the executed wave never trusts the
  index over the engine's own observations).

Equivalence with the scalar oracles (brute-force distance loops and the
per-point ``CellGrid`` assignment) is pinned by Hypothesis property tests
in ``tests/geometry/test_frontier.py``, including ``radius ± EPS``
boundaries and ``speed_floor < 1`` window arithmetic on the ``AWave``
side.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Sequence

try:  # numpy is a hard dependency of the package, but degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on broken installs
    _np = None

from .points import EPS, Point

__all__ = ["FAULT_REACH_ENV", "FRONTIER_PAD", "FrontierIndex", "frontier_for"]

#: Safety margin added to the visibility radius when classifying stops.
#: The engine's look predicate is ``hypot(d) <= radius + EPS``; the
#: frontier must never call a visible position cold, so its reach strictly
#: dominates the look limit with room for squared-distance rounding.
#: (A hot misclassification only costs a redundant snapshot — safe.)
FRONTIER_PAD = 1e-6

#: Below this many candidates, a scalar loop beats numpy call overhead.
_SCALAR_CUTOFF = 32

#: Fault-injection hook for the fuzzer's self-test (tests/CI only): when
#: a ``frontier-reach`` plant is armed (``FREEZETAG_FAULTS=
#: frontier-reach:margin=0.5`` through the structured registry in
#: :mod:`repro.experiments.faults`, or this legacy variable holding a
#: bare float), :func:`frontier_for` *shrinks* the reach by that margin —
#: deliberately breaking the "never call a visible position cold"
#: contract so that sleepers near the edge of the visibility disk are
#: misclassified and the batched ``awave`` walk sweeps past them.
#: ``legacy_awave`` takes no frontier and is unaffected, so the planted
#: bug is exactly the class the differential oracle exists to catch.
#: Never plant this outside a fuzzer self-test.
FAULT_REACH_ENV = "FREEZETAG_FAULT_FRONTIER_REACH"


def _fault_reach_deficit() -> float:
    # Late import: geometry must not import the experiments package (and
    # its transitive engine imports) at module load.
    from ..experiments.faults import frontier_reach_deficit

    return frontier_reach_deficit()


class FrontierIndex:
    """Packed-array spatial oracle over a swarm's initial positions.

    ``reach`` is the closed query radius (visibility radius plus
    :data:`FRONTIER_PAD`); ``keys`` are the robot ids in position order
    (defaults to ``0..n-1``).  Positions are immutable: the index is built
    once per instance and shared by every program of the run.
    """

    def __init__(
        self,
        positions: Sequence[Point],
        reach: float,
        keys: Sequence[Hashable] | None = None,
    ) -> None:
        if reach <= 0:
            raise ValueError("reach must be positive")
        self.reach = float(reach)
        pts = [(float(p[0]), float(p[1])) for p in positions]
        self._keys: list[Hashable] = (
            list(range(len(pts))) if keys is None else list(keys)
        )
        if len(self._keys) != len(pts):
            raise ValueError("keys must match positions one-to-one")
        self._n = len(pts)
        cs = self.cell_size = self.reach
        if pts:
            # Ulp-padded bounds: ``max_x + reach`` can round half an ulp
            # below a stop exactly at distance ``reach`` — the bbox is a
            # pre-filter and must never reject a true hit.
            span = max(
                max(abs(x) for x, _ in pts), max(abs(y) for _, y in pts), 1.0
            )
            slack = self.reach * 1e-12 + span * 1e-15
            self._bbox = (
                min(x for x, _ in pts) - self.reach - slack,
                min(y for _, y in pts) - self.reach - slack,
                max(x for x, _ in pts) + self.reach + slack,
                max(y for _, y in pts) + self.reach + slack,
            )
        else:
            self._bbox = None
        # Pack points into per-cell contiguous slices (FrozenGridHash
        # style): one sort by cell, then (start, stop) offsets per cell.
        order = sorted(
            range(self._n),
            key=lambda i: (
                math.floor(pts[i][0] / cs), math.floor(pts[i][1] / cs), i
            ),
        )
        self._xs = [pts[i][0] for i in order]
        self._ys = [pts[i][1] for i in order]
        self._packed_keys = [self._keys[i] for i in order]
        self._slices: dict[tuple[int, int], tuple[int, int]] = {}
        if self._n:
            def cell_at(idx: int) -> tuple[int, int]:
                x, y = pts[order[idx]]
                return (math.floor(x / cs), math.floor(y / cs))

            start = 0
            current = cell_at(0)
            for idx in range(1, self._n):
                cell = cell_at(idx)
                if cell != current:
                    self._slices[current] = (start, idx)
                    start = idx
                    current = cell
            self._slices[current] = (start, self._n)
        if _np is not None and self._n:
            self._vx = _np.asarray(self._xs, dtype=_np.float64)
            self._vy = _np.asarray(self._ys, dtype=_np.float64)
        else:
            self._vx = self._vy = None

    def __len__(self) -> int:
        return self._n

    # -- hot-stop classification -------------------------------------------
    def any_within(self, p: Point) -> bool:
        """Closed-disk test: is any initial position within ``reach``?

        The membership predicate is exactly ``math.hypot(dx, dy) <=
        reach``: squared distances inside a relative band of the boundary
        are re-checked with ``hypot``, the :class:`FrozenGridHash`
        convention, so squaring rounding never flips a decision.
        """
        if self._n == 0:
            return False
        x, y = float(p[0]), float(p[1])
        bbox = self._bbox
        if not (bbox[0] <= x <= bbox[2] and bbox[1] <= y <= bbox[3]):
            return False
        cs = self.cell_size
        reach = self.reach
        reach_sq = reach * reach
        lo = reach_sq * (1.0 - 1e-12)
        hi = reach_sq * (1.0 + 1e-12)
        xs, ys = self._xs, self._ys
        # Ulp-padded per-axis cell range (the FrozenGridHash convention):
        # ``x - reach`` can round across a cell boundary and silently drop
        # the cell holding an exactly-at-reach point.
        sx = reach + reach * 1e-12 + abs(x) * 1e-15
        sy = reach + reach * 1e-12 + abs(y) * 1e-15
        ix_lo = math.floor((x - sx) / cs)
        ix_hi = math.floor((x + sx) / cs)
        iy_lo = math.floor((y - sy) / cs)
        iy_hi = math.floor((y + sy) / cs)
        slices = self._slices
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                bounds = slices.get((ix, iy))
                if bounds is None:
                    continue
                start, stop = bounds
                if (
                    self._vx is not None
                    and stop - start >= _SCALAR_CUTOFF
                ):
                    dx = self._vx[start:stop] - x
                    dy = self._vy[start:stop] - y
                    d_sq = dx * dx + dy * dy
                    if bool((d_sq < lo).any()):
                        return True
                    for j in _np.nonzero(d_sq <= hi)[0]:
                        if math.hypot(dx[j], dy[j]) <= reach:
                            return True
                    continue
                for i in range(start, stop):
                    dx = xs[i] - x
                    dy = ys[i] - y
                    d_sq = dx * dx + dy * dy
                    if d_sq < lo:
                        return True
                    if d_sq <= hi and math.hypot(dx, dy) <= reach:
                        return True
        return False

    def hot_stops(self, stops: Sequence[Point]) -> list[bool]:
        """Per-stop hot mask for a planned snapshot lattice.

        ``True`` means the stop's closed reach-disk contains at least one
        initial position (the snapshot there *may* reveal a sleeping
        robot and must really be taken); ``False`` stops are provably
        empty and safe to sweep through.
        """
        if self._n == 0 or not stops:
            return [False] * len(stops)
        return [self.any_within(s) for s in stops]

    def rect_overlaps(self, xmin: float, ymin: float, xmax: float, ymax: float) -> bool:
        """Whether any initial position lies in the rect padded by ``reach``.

        A ``False`` answer proves every stop of a lattice confined to the
        rect is cold (stop disks are contained in the padded rect), letting
        the exploration skip per-stop classification entirely.
        """
        if self._n == 0:
            return False
        bbox = self._bbox
        if (
            bbox[2] < xmin - FRONTIER_PAD
            or bbox[0] > xmax + FRONTIER_PAD
            or bbox[3] < ymin - FRONTIER_PAD
            or bbox[1] > ymax + FRONTIER_PAD
        ):
            return False
        r = self.reach
        xs, ys = self._xs, self._ys
        if self._vx is not None and self._n >= _SCALAR_CUTOFF:
            return bool(
                (
                    (self._vx >= xmin - r) & (self._vx <= xmax + r)
                    & (self._vy >= ymin - r) & (self._vy <= ymax + r)
                ).any()
            )
        return any(
            xmin - r <= xs[i] <= xmax + r and ymin - r <= ys[i] <= ymax + r
            for i in range(self._n)
        )

    # -- wave cohorts -------------------------------------------------------
    def cells(self, width: float, origin: Point) -> list[tuple[int, int]]:
        """Wave-cell assignment of every position, in key order.

        Float-op-identical to :meth:`repro.core.agrid.CellGrid.cell_of`
        evaluated per point (``floor((x - ox + width/2) / width)``), but
        vectorized over the packed arrays when numpy is available.
        """
        if width <= 0:
            raise ValueError("cell width must be positive")
        half = width / 2.0
        ox, oy = float(origin[0]), float(origin[1])
        # Report in original key order: invert the packing permutation.
        by_key: dict[Hashable, tuple[int, int]] = {}
        if self._vx is not None:
            ix = _np.floor((self._vx - ox + half) / width).astype(_np.int64)
            iy = _np.floor((self._vy - oy + half) / width).astype(_np.int64)
            for pos, key in enumerate(self._packed_keys):
                by_key[key] = (int(ix[pos]), int(iy[pos]))
        else:
            for pos, key in enumerate(self._packed_keys):
                by_key[key] = (
                    int(math.floor((self._xs[pos] - ox + half) / width)),
                    int(math.floor((self._ys[pos] - oy + half) / width)),
                )
        return [by_key[k] for k in self._keys]

    def bucket(
        self, width: float, origin: Point
    ) -> dict[tuple[int, int], tuple[Hashable, ...]]:
        """Cohort membership: wave cell -> sorted keys of its residents."""
        buckets: dict[tuple[int, int], list[Hashable]] = {}
        for key, cell in zip(self._keys, self.cells(width, origin)):
            buckets.setdefault(cell, []).append(key)
        return {
            cell: tuple(sorted(members)) for cell, members in buckets.items()
        }

    def cohort(
        self,
        cell: tuple[int, int],
        width: float,
        origin: Point,
        exclude: Iterable[Hashable] = (),
    ) -> tuple[Hashable, ...]:
        """Members of ``cell``'s cohort after decimation.

        ``exclude`` removes robots that can never gather — crash-on-wake
        casualties park where they were woken and drop out of the wave.
        """
        dropped = set(exclude)
        return tuple(
            k for k in self.bucket(width, origin).get(cell, ()) if k not in dropped
        )


def frontier_for(
    positions: Sequence[Point],
    visibility_radius: float,
    keys: Sequence[Hashable] | None = None,
) -> FrontierIndex:
    """The standard construction: reach = visibility radius + safety pad.

    The pad strictly dominates the engine's look tolerance (``EPS``) plus
    squared-distance rounding, so a cold classification is a proof that
    the engine snapshot at that stop contains no sleeping robot.

    :data:`FAULT_REACH_ENV` (test-only fault injection) undercuts the
    reach on purpose; see its docstring.
    """
    reach = visibility_radius + FRONTIER_PAD + EPS - _fault_reach_deficit()
    return FrontierIndex(positions, reach=max(reach, 1e-9), keys=keys)
