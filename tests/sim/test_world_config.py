"""World models: speeds, visibility, heterogeneous budgets, crash-on-wake."""

import math

import pytest

from repro.geometry import Point
from repro.sim import (
    AbsorbError,
    Absorb,
    Engine,
    Look,
    Move,
    SOURCE_ID,
    Wake,
    World,
    WorldConfig,
)


def run_world(world, program):
    engine = Engine(world)
    engine.spawn(program, [SOURCE_ID])
    return engine.run()


class TestConfigValidation:
    def test_default_is_the_paper_world(self):
        config = WorldConfig()
        assert config.is_default()
        assert config.min_speed() == 1.0
        assert config.describe() == "default"

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="visibility_radius"):
            WorldConfig(visibility_radius=0.0)
        with pytest.raises(ValueError, match="speeds must be positive"):
            WorldConfig(speed=-1.0)
        with pytest.raises(ValueError, match="slow_fraction"):
            WorldConfig(slow_fraction=1.5)
        with pytest.raises(ValueError, match="crash_on_wake"):
            WorldConfig(crash_on_wake=-0.1)
        with pytest.raises(ValueError, match="budgets must be positive"):
            WorldConfig(budget=0.0)

    def test_override_validation(self):
        config = WorldConfig()
        assert config.replace(slow_fraction=0.5).slow_fraction == 0.5
        with pytest.raises(ValueError, match="unknown world parameter"):
            config.replace(gravity=9.8)
        with pytest.raises(ValueError, match="expects a number"):
            config.replace(speed="fast")
        with pytest.raises(ValueError, match="expects a number"):
            config.replace(failure_seed=1.5)

    def test_budget_cap_composition(self):
        config = WorldConfig(budget=10.0, low_battery_budget=3.0)
        capped = config.with_budget_cap(5.0)
        assert capped.budget == 5.0
        assert capped.low_battery_budget == 3.0
        assert config.with_budget_cap(math.inf) is config

    def test_min_speed_ignores_inactive_slow_cohort(self):
        assert WorldConfig(slow_speed=0.1).min_speed() == 1.0
        assert WorldConfig(slow_fraction=0.5, slow_speed=0.25).min_speed() == 0.25
        assert WorldConfig(speed=2.0).min_speed() == 2.0

    def test_conflicting_world_arguments_rejected(self):
        with pytest.raises(ValueError, match="via config"):
            World(
                source=Point(0, 0), positions=[], budget=5.0,
                config=WorldConfig(),
            )


class TestSpeeds:
    def test_travel_time_is_distance_over_speed(self):
        world = World(
            source=Point(0, 0), positions=[], config=WorldConfig(speed=2.0)
        )

        def program(proc):
            yield Move(Point(10, 0))

        result = run_world(world, program)
        assert result.termination_time == pytest.approx(5.0)
        assert world.source.odometer == pytest.approx(10.0)  # energy = distance

    def test_team_moves_at_slowest_member(self):
        config = WorldConfig(slow_fraction=1.0, slow_speed=0.5)
        world = World(source=Point(0, 0), positions=[Point(1, 0)], config=config)
        assert world.robots[1].speed == 0.5

        def program(proc):
            yield Move(Point(1, 0))       # source alone: unit speed, 1s
            yield Wake(1)                 # slow robot joins the team
            yield Move(Point(3, 0))       # 2 units at speed 0.5: 4s

        result = run_world(world, program)
        assert result.makespan == pytest.approx(1.0)
        assert result.termination_time == pytest.approx(5.0)

    def test_slow_assignment_deterministic(self):
        config = WorldConfig(slow_fraction=0.5, slow_speed=0.25, failure_seed=9)
        positions = [Point(i, 0) for i in range(1, 9)]
        speeds = lambda: [  # noqa: E731 - tiny test helper
            World(source=Point(0, 0), positions=positions, config=config)
            .robots[i].speed
            for i in range(1, 9)
        ]
        assert speeds() == speeds()
        assert speeds().count(0.25) == 4  # round(0.5 * 8)


class TestVisibility:
    def test_radius_controls_look(self):
        positions = [Point(1.5, 0)]

        def program(proc):
            snap = (yield Look()).value
            seen.append([v.robot_id for v in snap.sleeping()])

        for radius, expected in ((1.0, []), (2.0, [1])):
            seen = []
            world = World(
                source=Point(0, 0), positions=positions,
                config=WorldConfig(visibility_radius=radius),
            )
            run_world(world, program)
            assert seen == [expected]


class TestHeterogeneousBudgets:
    def test_low_battery_cohort_assigned(self):
        config = WorldConfig(
            budget=100.0, low_battery_fraction=0.5, low_battery_budget=2.0,
            failure_seed=3,
        )
        world = World(
            source=Point(0, 0),
            positions=[Point(i, 0) for i in range(1, 7)],
            config=config,
        )
        budgets = [world.robots[i].budget for i in range(1, 7)]
        assert budgets.count(2.0) == 3
        assert budgets.count(100.0) == 3
        assert world.source.budget == 100.0


class TestCrashOnWake:
    def crash_world(self):
        # crash_on_wake=1.0: every woken robot crashes, deterministically.
        return World(
            source=Point(0, 0),
            positions=[Point(1, 0), Point(2, 0)],
            config=WorldConfig(crash_on_wake=1.0),
        )

    def test_crashed_robot_counts_awake_but_never_joins(self):
        world = self.crash_world()

        def child(proc):  # pragma: no cover - must never run
            raise AssertionError("crashed robot ran its program")
            yield

        def program(proc):
            yield Move(Point(1, 0))
            outcome = yield Wake(1, program=child)
            outcomes.append(outcome.value)
            yield Move(Point(2, 0))
            outcome = yield Wake(2)  # team-join flavor
            outcomes.append(outcome.value)
            assert proc.robot_ids == (0,)  # nobody joined

        outcomes = []
        result = run_world(world, program)
        assert outcomes == [None, None]
        assert result.woke_all
        assert result.makespan == pytest.approx(2.0)
        assert world.robots[1].awake and world.robots[1].crashed
        assert [r for r in world.crashed_robots()] == [1, 2]

    def test_crashed_robot_visible_but_not_absorbable(self):
        world = self.crash_world()

        def program(proc):
            yield Move(Point(1, 0))
            yield Wake(1)
            snap = (yield Look()).value
            awake_ids = [v.robot_id for v in snap.awake()]
            assert 1 in awake_ids  # parked in place, still visible
            yield Absorb([1])  # engine must refuse: crashed robots are gone

        with pytest.raises(AbsorbError, match="crashed"):
            run_world(world, program)

    def test_crash_assignment_independent_of_instance_seed(self):
        # Same failure_seed, different robot layout: same crash pattern
        # length-wise; draws depend only on (config, n).
        config = WorldConfig(crash_on_wake=0.5, failure_seed=11)
        flags = [
            [
                World(
                    source=Point(0, 0),
                    positions=[Point(i + 1, dy) for i in range(10)],
                    config=config,
                ).robots[i + 1].crashed
                for i in range(10)
            ]
            for dy in (0.0, 1.0)
        ]
        assert flags[0] == flags[1]
