"""DFSampling (Lemma 5): sampling validity, recruitment, coverage."""

import math
import random

import pytest

from repro.core import TeamKnowledge, dfsampling
from repro.geometry import (
    Point,
    Rect,
    covers,
    is_ell_sampling,
    square_at_center,
)
from repro.sim import Engine, SOURCE_ID, World


def run_sampling(positions, ell, cap, region=None, seeds=None):
    world = World(source=Point(0, 0), positions=positions)
    engine = Engine(world)
    region = region or square_at_center(Point(0, 0), 64.0)
    outcomes = []
    knowledge = TeamKnowledge(members={SOURCE_ID: Point(0, 0)})

    def program(proc):
        outcome = yield from dfsampling(
            proc,
            region=region,
            owns=lambda p: region.contains(p),
            seeds=seeds or [Point(0, 0)],
            ell=ell,
            recruit_cap=cap,
            knowledge=knowledge,
            key_base=("test",),
        )
        outcomes.append(outcome)

    engine.spawn(program, [SOURCE_ID])
    result = engine.run()
    return outcomes[0], knowledge, world, result


def chain(n, step):
    return [Point((i + 1) * step, 0.0) for i in range(n)]


class TestSamplingInvariants:
    def test_sample_is_ell_sampling(self):
        rng = random.Random(2)
        pts = [Point(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(40)]
        outcome, _, _, _ = run_sampling(pts, ell=2.0, cap=100)
        assert is_ell_sampling(outcome.sampled, ell=2.0)

    def test_recruits_are_at_sampled_positions(self):
        pts = chain(10, step=1.5)
        outcome, _, world, _ = run_sampling(pts, ell=1.0, cap=100)
        sampled = set(outcome.sampled)
        for rid, home in outcome.recruited.items():
            assert home in sampled
            assert world.robots[rid].awake

    def test_cap_respected(self):
        pts = chain(20, step=1.5)
        outcome, _, world, _ = run_sampling(pts, ell=1.0, cap=5)
        assert len(outcome.recruited) == 5
        assert outcome.hit_cap
        assert not outcome.covered

    def test_zero_cap_short_circuits(self):
        outcome, _, _, result = run_sampling(chain(5, 1.0), ell=1.0, cap=0)
        assert outcome.hit_cap
        assert outcome.recruited == {}
        assert result.termination_time == 0.0


class TestCoverage:
    def test_exhaustive_run_discovers_every_robot(self):
        """Lemma 5 case (2): cap not reached => every robot discovered."""
        rng = random.Random(9)
        # An ell-connected cloud.
        pts = []
        x, y = 0.0, 0.0
        for _ in range(25):
            x += rng.uniform(-1.2, 1.6)
            y += rng.uniform(-1.2, 1.2)
            pts.append(Point(x, y))
        ell = 2.0
        outcome, knowledge, world, _ = run_sampling(pts, ell=ell, cap=10_000)
        assert outcome.covered
        known = set(knowledge.members) | set(knowledge.sleeping)
        assert known >= set(range(1, 26)), "some robot was never discovered"
        # Coverage in the geometric sense of Section 2.4.
        assert covers(outcome.sampled, pts, ell=2 * ell)

    def test_team_grows_during_run(self):
        pts = chain(8, step=1.5)
        outcome, _, world, _ = run_sampling(pts, ell=1.0, cap=100)
        # All chain robots recruited: spacing 1.5 > ell = 1.
        assert len(outcome.recruited) == 8

    def test_close_pairs_recruit_only_one(self):
        # Two robots 0.3 apart with ell=1: only one is sampled/recruited,
        # but both must be discovered.
        pts = [Point(1.0, 0.0), Point(1.3, 0.0)]
        outcome, knowledge, _, _ = run_sampling(pts, ell=1.0, cap=100)
        assert len(outcome.recruited) == 1
        assert set(knowledge.sleeping) | set(knowledge.members) >= {1, 2}


class TestOwnership:
    def test_only_owned_robots_recruited(self):
        region = Rect(0.0, -5.0, 10.0, 5.0)
        own_half = Rect(0.0, -5.0, 5.0, 5.0)
        pts = chain(6, step=1.4)  # x = 1.4 .. 8.4
        world = World(source=Point(0, 0), positions=pts)
        engine = Engine(world)
        knowledge = TeamKnowledge(members={SOURCE_ID: Point(0, 0)})
        outcomes = []

        def program(proc):
            outcome = yield from dfsampling(
                proc,
                region=region,
                owns=lambda p: own_half.contains_half_open(p),
                seeds=[Point(0, 0)],
                ell=1.0,
                recruit_cap=100,
                knowledge=knowledge,
                key_base=("own",),
            )
            outcomes.append(outcome)

        engine.spawn(program, [SOURCE_ID])
        engine.run()
        for rid, home in outcomes[0].recruited.items():
            assert own_half.contains_half_open(home)
        # Robots beyond x=5 stay asleep.
        for rid in range(1, 7):
            robot = world.robots[rid]
            if robot.home.x >= 5.0:
                assert not robot.awake


class TestSeedHandling:
    def test_covered_seed_skipped(self):
        # Two seeds 0.5 apart with ell=1: whichever comes second in the
        # Sort(X) order is already covered and must be skipped.
        seeds = [Point(1.0, 0.0), Point(1.5, 0.0)]
        outcome, knowledge, world, _ = run_sampling(
            [Point(1.0, 0.0), Point(1.5, 0.0)], ell=1.0, cap=100, seeds=seeds
        )
        assert sum(1 for s in outcome.sampled if s in seeds) == 1
        # The robot at the sampled seed is recruited; the other one is at
        # least discovered.
        assert len(outcome.recruited) == 1
        assert set(knowledge.sleeping) | set(knowledge.members) >= {1, 2}

    def test_disconnected_cluster_not_found_without_seed(self):
        # A far cluster beyond 2*ell of anything sampled stays unknown —
        # exactly why ASeparator needs separator seeds.
        pts = [Point(1.0, 0.0), Point(30.0, 0.0)]
        outcome, knowledge, world, _ = run_sampling(pts, ell=1.0, cap=100)
        assert not world.robots[2].awake
        assert outcome.covered  # exhausted without reaching the cap
