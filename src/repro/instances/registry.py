"""Scenario registry: one pluggable workload API — families × world models.

The algorithm registry (:mod:`repro.core.registry`) made the *solver* side
of a run pluggable; this module is its workload-side twin.  A *scenario*
is a registered :class:`ScenarioSpec`:

* a canonical ``name`` (the key used by
  :class:`~repro.core.runner.RunRequest`, sweep specs, the CLI and the
  cache),
* an instance *generator* with a typed parameter schema
  (:class:`~repro.params.ParamSpec`) — declared metadata that replaces the
  old ``inspect.signature`` sniffing of ``family_accepts_seed``,
* a :class:`~repro.sim.WorldConfig` world model (speed profile, energy
  budgets, visibility radius, failure injection) that every run of the
  scenario executes under, overridable per-request through validated
  ``world_params``.

Every classic instance family is registered as a scenario with the default
(paper) world, so ``scenario="uniform_disk"`` and the legacy
``family="uniform_disk"`` path build identical instances; derived
scenarios attach non-default worlds ("20% slow robots", "crash-on-wake")
to the same generators.  Built-ins register in
:mod:`repro.instances.catalog` (imported lazily on first lookup); external
code adds new ones with the :func:`register_scenario` decorator::

    @register_scenario(
        name="foggy_disk", label="Disk in fog", family="uniform_disk",
        params=(ParamSpec("n", int), ParamSpec("rho", float),
                ParamSpec("seed", int, default=0)),
        world=WorldConfig(visibility_radius=0.5),
    )
    def _build_foggy(n, rho, seed=0):
        return uniform_disk(n=n, rho=rho, seed=seed)

After registration the scenario is immediately sweepable, cacheable and
listed by ``freezetag scenarios`` — no engine, harness or CLI changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..params import ParamSpec, lookup_param, validate_param_mapping
from ..sim import WorldConfig
from .spec import Instance

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered workload: generator schema plus world model."""

    name: str
    label: str
    build: Callable[..., Instance]    # generator, called with validated kwargs
    params: tuple[ParamSpec, ...] = ()
    world: WorldConfig = WorldConfig()
    #: Name of the base generator family (CLI flag mapping, aggregation).
    family: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"scenario {self.name!r} has duplicate parameter names")
        if not self.family:
            object.__setattr__(self, "family", self.name)

    # -- schema ------------------------------------------------------------
    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    @property
    def accepts_seed(self) -> bool:
        """Whether the generator is seeded (declared, not sniffed): sweeps
        run seeded scenarios once per seed, deterministic ones once."""
        return "seed" in self.param_names

    def param(self, name: str) -> ParamSpec:
        return lookup_param(self.params, name, f"scenario {self.name!r}")

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Validate generator kwargs against the schema (sorted-key dict);
        unknown names and type/choice mismatches raise ``ValueError``."""
        return validate_param_mapping(
            self.params, params, f"scenario {self.name!r}"
        )

    # -- building ----------------------------------------------------------
    def make(self, **kwargs: Any) -> Instance:
        """Build the scenario's instance from validated generator kwargs."""
        return self.build(**self.validate_params(kwargs))

    def world_config(self, overrides: Mapping[str, Any] | None = None) -> WorldConfig:
        """The scenario's world model with ``overrides`` applied."""
        if not overrides:
            return self.world
        return self.world.replace(**dict(overrides))

    # -- listing -----------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Machine-readable registry entry — the same facts the
        ``freezetag scenarios`` listing prints, for ``--json`` and the
        service's ``GET /scenarios``."""
        return {
            "name": self.name,
            "label": self.label,
            "family": self.family,
            "accepts_seed": self.accepts_seed,
            "description": self.description,
            "world": self.world.as_dict(),
            "params": [p.as_dict() for p in self.params],
        }

    def describe(self) -> str:
        """One line for the ``freezetag scenarios`` listing."""
        schema = ", ".join(p.describe() for p in self.params) or "-"
        return (
            f"{self.name:<20} {self.label:<26} "
            f"{self.world.describe():<34} {schema}"
        )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ScenarioSpec] = {}
_builtins_loaded = False
_builtins_loading = False


def _ensure_builtins() -> None:
    """Load the built-in registrations exactly once, lazily.

    Mirrors the algorithm registry's discipline: the loaded flag is only
    set on *success*, and a failed catalog import rolls back its partial
    registrations so a later lookup retries cleanly.
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    before = set(_REGISTRY)
    try:
        from . import catalog  # noqa: F401  (imported for its registrations)
    except BaseException:
        for name in set(_REGISTRY) - before:
            del _REGISTRY[name]
        raise
    finally:
        _builtins_loading = False
    _builtins_loaded = True


def register_scenario(
    *,
    name: str,
    label: str,
    params: tuple[ParamSpec, ...] = (),
    world: WorldConfig | None = None,
    family: str = "",
    description: str = "",
) -> Callable:
    """Decorator registering a ``build(**kwargs) -> Instance`` generator as
    scenario ``name``.  Returns the generator unchanged.

    Duplicate names are rejected — a scenario's name is its identity in
    sweep specs and cache keys, so silently replacing one would repoint
    existing artifacts at different workloads.
    """

    def decorator(build: Callable[..., Instance]):
        spec = ScenarioSpec(
            name=name,
            label=label,
            build=build,
            params=params,
            world=world if world is not None else WorldConfig(),
            family=family,
            description=description,
        )
        if spec.name in _REGISTRY:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        _REGISTRY[spec.name] = spec
        return build

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registration (test/plugin teardown hook)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a spec by canonical name (``ValueError`` when unknown)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered names in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def iter_scenarios() -> tuple[ScenarioSpec, ...]:
    """Registered specs in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY.values())
