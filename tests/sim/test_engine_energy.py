"""Energy accounting and budget enforcement."""

import math

import pytest

from repro.geometry import Point
from repro.sim import (
    Engine,
    EnergyBudgetExceeded,
    Move,
    MovePath,
    SOURCE_ID,
    Wake,
    World,
)


class TestOdometer:
    def test_odometer_accumulates_exact_path_length(self):
        world = World(source=Point(0, 0), positions=[])
        engine = Engine(world)

        def program(proc):
            yield Move(Point(1, 0))
            yield MovePath([Point(1, 1), Point(0, 1)])
            yield Move(Point(0, 0))

        engine.spawn(program, [SOURCE_ID])
        engine.run()
        assert world.source.odometer == pytest.approx(4.0)

    def test_woken_robot_starts_at_zero(self):
        world = World(source=Point(0, 0), positions=[Point(1, 0)])
        engine = Engine(world)

        def program(proc):
            yield Move(Point(1, 0))
            yield Wake(1)

        engine.spawn(program, [SOURCE_ID])
        engine.run()
        assert world.robots[1].odometer == 0.0

    def test_total_and_max(self):
        world = World(source=Point(0, 0), positions=[Point(2, 0)])
        engine = Engine(world)

        def program(proc):
            yield Move(Point(2, 0))
            yield Wake(1)
            yield Move(Point(3, 0))

        engine.spawn(program, [SOURCE_ID])
        result = engine.run()
        assert result.max_energy == pytest.approx(3.0)   # source: 2 + 1
        assert result.total_energy == pytest.approx(4.0)  # + robot 1's 1


class TestBudgets:
    def test_budget_violation_raises_with_details(self):
        world = World(source=Point(0, 0), positions=[], budget=5.0)
        engine = Engine(world)

        def program(proc):
            yield Move(Point(4, 0))
            yield Move(Point(8, 0))  # total 8 > 5

        engine.spawn(program, [SOURCE_ID])
        with pytest.raises(EnergyBudgetExceeded) as err:
            engine.run()
        assert err.value.robot_id == SOURCE_ID
        assert err.value.budget == pytest.approx(5.0)

    def test_budget_checked_before_moving(self):
        # The violating move must not partially execute.
        world = World(source=Point(0, 0), positions=[], budget=1.0)
        engine = Engine(world)

        def program(proc):
            yield Move(Point(10, 0))

        engine.spawn(program, [SOURCE_ID])
        with pytest.raises(EnergyBudgetExceeded):
            engine.run()
        assert world.source.position == Point(0, 0)
        assert world.source.odometer == 0.0

    def test_exact_budget_is_allowed(self):
        world = World(source=Point(0, 0), positions=[], budget=5.0)
        engine = Engine(world)

        def program(proc):
            yield Move(Point(5, 0))

        engine.spawn(program, [SOURCE_ID])
        engine.run()
        assert world.source.odometer == pytest.approx(5.0)

    def test_source_budget_override(self):
        world = World(
            source=Point(0, 0),
            positions=[Point(1, 0)],
            budget=1.0,
            source_budget=math.inf,
        )
        engine = Engine(world)

        def program(proc):
            yield Move(Point(50, 0))

        engine.spawn(program, [SOURCE_ID])
        engine.run()
        assert world.source.odometer == pytest.approx(50.0)

    def test_remaining_budget_helper(self):
        world = World(source=Point(0, 0), positions=[], budget=10.0)
        assert world.source.remaining_budget == 10.0
        assert world.source.can_move(10.0)
        assert not world.source.can_move(10.1)
