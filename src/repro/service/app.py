"""The sweep service: endpoint handlers over one scheduler + one cache.

:class:`SweepService` wires the pieces together and owns their
lifecycle.  The API (all JSON unless noted):

=======  ==========================  ========================================
POST     ``/sweeps``                 submit a sweep-spec body; 202 with the
                                     sweep id (= spec fingerprint), or 200
                                     when that exact sweep is already
                                     resident (resubmission dedup)
GET      ``/sweeps``                 list resident sweeps
GET      ``/sweeps/{id}``            status: done/cached/pending counts and
                                     per-job failure info; falls back to the
                                     on-disk manifest for sweeps recorded by
                                     a previous process (``resident: false``)
GET      ``/sweeps/{id}/records``    settled records, ``?format=csv`` for
                                     the byte-identical ``run_sweep`` CSV;
                                     409 while incomplete unless
                                     ``?partial=1``
GET      ``/sweeps/{id}/events``     SSE stream of per-job settle events
                                     (replays history, then live)
GET      ``/metrics``                process telemetry: jobs by origin,
                                     events/s, queue depth, cache hit rate,
                                     uptime
GET      ``/algorithms``             algorithm registry (``as_dict`` form)
GET      ``/scenarios``              scenario registry (``as_dict`` form)
GET      ``/healthz``                liveness probe
=======  ==========================  ========================================

Sweep ids may be abbreviated to any unique prefix in path captures.

Error contract: malformed specs are 400s with the validation message;
unknown sweeps are 404s; a *job* failure is never an HTTP error — it is
data in the status body (``errors``) and the event stream.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any

from ..core.registry import iter_algorithms
from ..experiments.cache import ResultCache
from ..experiments.harness import SweepSpec
from ..experiments.io import format_csv, sweep_rows
from ..experiments.manifest import SweepManifest, manifest_dir
from ..instances import iter_scenarios
from .httpd import (
    HttpError,
    Request,
    Response,
    Router,
    SSEResponse,
    json_response,
    serve,
    sse_event,
    text_response,
)
from .scheduler import JobScheduler
from .sweeps import SweepRun
from .telemetry import Telemetry

__all__ = ["SweepService"]


class SweepService:
    """One service process: shared cache, scheduler, resident sweeps."""

    def __init__(
        self,
        cache_dir: str | Path,
        workers: int | None = None,
        executor: Any | None = None,
        policy: Any | None = None,
        stall_after: float | None = None,
    ) -> None:
        self.cache = ResultCache(Path(cache_dir))
        self.telemetry = Telemetry()
        self.scheduler = JobScheduler(
            self.cache,
            executor=executor,
            workers=workers,
            telemetry=self.telemetry,
            policy=policy,
            stall_after=stall_after,
        )
        self.sweeps: dict[str, SweepRun] = {}
        self.router = self._build_router()
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8765) -> tuple[str, int]:
        """Start scheduler and HTTP listener; returns the bound address."""
        await self.scheduler.start()
        self._server = await serve(self.router, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def stop(self) -> None:
        """Stop accepting, cancel sweep tasks, drain the scheduler."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for run in self.sweeps.values():
            if run.task is not None and not run.task.done():
                run.task.cancel()
        await asyncio.gather(
            *(
                run.task
                for run in self.sweeps.values()
                if run.task is not None
            ),
            return_exceptions=True,
        )
        await self.scheduler.stop()

    async def run_forever(self, host: str, port: int) -> None:
        """CLI entry: serve until cancelled, then shut down cleanly."""
        bound_host, bound_port = await self.start(host, port)
        print(
            f"freezetag service on http://{bound_host}:{bound_port} "
            f"(cache: {self.cache.directory}, "
            f"workers: {self.scheduler.executor.workers})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()  # cancelled by signal handlers
        finally:
            await self.stop()

    # -- routing ------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/", self._get_index)
        router.add("GET", "/healthz", self._get_healthz)
        router.add("POST", "/sweeps", self._post_sweeps)
        router.add("GET", "/sweeps", self._get_sweeps)
        router.add("GET", "/sweeps/{sweep_id}", self._get_sweep)
        router.add("GET", "/sweeps/{sweep_id}/records", self._get_records)
        router.add("GET", "/sweeps/{sweep_id}/events", self._get_events)
        router.add("GET", "/metrics", self._get_metrics)
        router.add("GET", "/algorithms", self._get_algorithms)
        router.add("GET", "/scenarios", self._get_scenarios)
        return router

    def _resolve(self, sweep_id: str) -> SweepRun:
        """A resident sweep by id or unique prefix (404 otherwise)."""
        run = self.sweeps.get(sweep_id)
        if run is not None:
            return run
        matches = [
            candidate
            for candidate in self.sweeps
            if candidate.startswith(sweep_id)
        ]
        if len(matches) == 1:
            return self.sweeps[matches[0]]
        if len(matches) > 1:
            raise HttpError(
                409, f"sweep id prefix {sweep_id!r} is ambiguous ({len(matches)} matches)"
            )
        raise HttpError(404, f"unknown sweep {sweep_id!r}")

    # -- handlers ------------------------------------------------------------

    async def _get_index(self, request: Request) -> Response:
        return json_response(
            {
                "service": "freezetag",
                "endpoints": sorted(
                    {
                        "POST /sweeps",
                        "GET /sweeps",
                        "GET /sweeps/{id}",
                        "GET /sweeps/{id}/records",
                        "GET /sweeps/{id}/events",
                        "GET /metrics",
                        "GET /algorithms",
                        "GET /scenarios",
                        "GET /healthz",
                    }
                ),
            }
        )

    async def _get_healthz(self, request: Request) -> Response:
        """Liveness plus the wedge-or-rot signals a probe should alarm on:
        heartbeat age with jobs in flight, pool recycles, and quarantine
        counts (retry-exhausted jobs, corrupt cache entries)."""
        return json_response(
            {
                "ok": True,
                "queue_depth": self.scheduler.queue_depth,
                "inflight": self.scheduler.inflight,
                "last_settle_age_s": self.telemetry.last_settle_age_s(),
                "pools_recycled": self.telemetry.pools_recycled,
                "quarantine": {
                    "jobs": self.telemetry.jobs_quarantined,
                    "cache_entries": self.cache.quarantined,
                    "cache_entries_on_disk": self.cache.quarantined_on_disk(),
                },
            }
        )

    async def _post_sweeps(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "sweep spec must be a JSON object")
        try:
            spec = SweepSpec.from_dict(payload)
            requests = spec.expand()
        except ValueError as exc:
            raise HttpError(400, f"invalid sweep spec: {exc}") from None
        run = SweepRun(spec, requests, self.cache)
        existing = self.sweeps.get(run.sweep_id)
        if existing is not None:
            # Same fingerprint = same ordered job list: the resident run
            # already covers this submission, computed or computing once.
            return json_response(
                {**existing.status_payload(), "created": False}, status=200
            )
        self.sweeps[run.sweep_id] = run
        run.manifest.flush()  # on disk before the first job, like run_sweep
        self.telemetry.sweeps_submitted += 1
        run.task = asyncio.create_task(
            self._run_sweep(run), name=f"sweep-{run.sweep_id[:8]}"
        )
        return json_response(
            {**run.status_payload(), "created": True}, status=202
        )

    async def _run_sweep(self, run: SweepRun) -> None:
        await run.run(self.scheduler)
        self.telemetry.sweeps_completed += 1

    async def _get_sweeps(self, request: Request) -> Response:
        return json_response(
            {
                "sweeps": [
                    run.status_payload()
                    for run in sorted(
                        self.sweeps.values(), key=lambda r: r.created
                    )
                ]
            }
        )

    async def _get_sweep(self, request: Request, sweep_id: str) -> Response:
        try:
            run = self._resolve(sweep_id)
        except HttpError as exc:
            if exc.status != 404:
                raise
            return self._detached_status(sweep_id)
        return json_response(run.status_payload())

    def _detached_status(self, sweep_id: str) -> Response:
        """Manifest-backed status for a sweep this process never saw —
        one recorded by a previous server run or a CLI ``run_sweep``."""
        manifest = SweepManifest.by_fingerprint(self.cache, sweep_id)
        if manifest is None:
            raise HttpError(404, f"unknown sweep {sweep_id!r}")
        return json_response(
            {
                "id": sweep_id,
                "name": manifest.spec_name,
                "state": "detached",
                "resident": False,
                "counts": manifest.status(self.cache).as_dict(),
                "errors": [],
                "manifest": str(manifest.path),
            }
        )

    async def _get_records(self, request: Request, sweep_id: str) -> Response:
        try:
            run = self._resolve(sweep_id)
            records = run.settled_records()
            complete = run.finished and not run.errors
            name = run.spec.name
        except HttpError as exc:
            if exc.status != 404:
                raise
            records, complete, name = self._detached_records(sweep_id)
        fmt = request.query.get("format", "json")
        if not complete and not request.flag("partial"):
            raise HttpError(
                409,
                "sweep is not fully settled; retry later or pass "
                "?partial=1 for the records settled so far",
            )
        if fmt == "csv":
            return text_response(
                format_csv(sweep_rows(records)), content_type="text/csv"
            )
        if fmt != "json":
            raise HttpError(400, f"unknown format {fmt!r}; use json or csv")
        return json_response(
            {
                "id": sweep_id,
                "name": name,
                "complete": complete,
                "count": len(records),
                "records": records,
            }
        )

    def _detached_records(
        self, sweep_id: str
    ) -> tuple[list[dict[str, Any]], bool, str]:
        """Settled records of a non-resident sweep, straight off the
        shared cache via its manifest's job keys."""
        manifest = SweepManifest.by_fingerprint(self.cache, sweep_id)
        if manifest is None:
            raise HttpError(404, f"unknown sweep {sweep_id!r}")
        records = [
            record
            for key in manifest.keys
            if (record := self.cache.peek_key(key)) is not None
        ]
        return records, len(records) == manifest.total, manifest.spec_name

    async def _get_events(self, request: Request, sweep_id: str) -> SSEResponse:
        run = self._resolve(sweep_id)

        async def stream():
            async for event in run.events():
                yield sse_event(event["event"], event)

        return SSEResponse(events=stream())

    async def _get_metrics(self, request: Request) -> Response:
        hits, misses = self.cache.hits, self.cache.misses
        probes = hits + misses
        resident = list(self.sweeps.values())
        return json_response(
            {
                **self.telemetry.snapshot(),
                "queue_depth": self.scheduler.queue_depth,
                "inflight": self.scheduler.inflight,
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / probes) if probes else 0.0,
                    "entries": len(self.cache),
                    "quarantined": self.cache.quarantined,
                    "quarantined_on_disk": self.cache.quarantined_on_disk(),
                    "directory": str(self.cache.directory),
                },
                "sweeps_resident": {
                    "total": len(resident),
                    "running": sum(1 for r in resident if not r.finished),
                    "done": sum(1 for r in resident if r.finished),
                },
                "manifest_dir": str(manifest_dir(self.cache)),
            }
        )

    async def _get_algorithms(self, request: Request) -> Response:
        return json_response(
            {"algorithms": [spec.as_dict() for spec in iter_algorithms()]}
        )

    async def _get_scenarios(self, request: Request) -> Response:
        return json_response(
            {"scenarios": [spec.as_dict() for spec in iter_scenarios()]}
        )
